#include <gtest/gtest.h>

#include "cores/cm0/cm0_core.h"
#include "cores/cm0/cm0_tb.h"
#include "isa/thumb_assembler.h"
#include "isa/thumb_subsets.h"
#include "iss/thumb_iss.h"
#include "netlist/check.h"

namespace pdat::cores {
namespace {

const Netlist& cm0() {
  static const Cm0Core core = build_cm0();
  return core.netlist;
}

std::string cosim(const std::string& asm_text) {
  return cm0_cosim_against_iss(cm0(), isa::assemble_thumb(asm_text).halves);
}

TEST(Cm0Core, BuildsWellFormedAtEmbeddedScale) {
  EXPECT_TRUE(check_netlist(cm0()).empty());
  EXPECT_GT(cm0().gate_count(), 4000u);
  EXPECT_LT(cm0().gate_count(), 60000u);
}

TEST(Cm0Iss, BasicArithmetic) {
  iss::ThumbIss iss;
  const auto prog = isa::assemble_thumb(R"(
      movs r0, #10
      movs r1, #3
      adds r2, r0, r1
      subs r3, r0, r1
      muls r3, r0
      bkpt #0
  )");
  iss.load_halfwords(0, prog.halves);
  iss.reset();
  iss.run(100);
  EXPECT_TRUE(iss.halted());
  EXPECT_EQ(iss.reg(2), 13u);
  EXPECT_EQ(iss.reg(3), 70u);
}

TEST(Cm0Cosim, AluAndFlags) {
  EXPECT_EQ(cosim(R"(
      movs r0, #200
      lsls r0, r0, #8
      adds r0, #255
      movs r1, #77
      ands r2, r1
      mov r2, r0
      eors r2, r1
      orrs r2, r1
      bics r2, r1
      mvns r3, r2
      rsbs r4, r3
      cmp r4, r3
      cmn r4, r3
      tst r0, r1
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, AddSubCarryChains) {
  EXPECT_EQ(cosim(R"(
      movs r0, #255
      lsls r0, r0, #24     ; big value
      movs r1, #1
      lsls r1, r1, #28
      adds r2, r0, r1      ; sets C/V
      adcs r2, r1
      subs r3, r0, r1
      sbcs r3, r1
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, ShiftVariants) {
  EXPECT_EQ(cosim(R"(
      li r0, 0x80000001
      lsrs r1, r0, #1
      asrs r2, r0, #1
      lsls r3, r0, #4
      lsrs r4, r0, #32     ; imm5 == 0 means 32
      movs r5, #33
      mov r6, r0
      lsls r6, r5          ; >= 32 register shift
      mov r7, r0
      rors r7, r5
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, MemoryWidths) {
  EXPECT_EQ(cosim(R"(
      li r0, 0x1000
      li r1, 0x87654321
      str r1, [r0, #0]
      ldrb r2, [r0, #1]
      ldrh r3, [r0, #2]
      strb r2, [r0, #5]
      strh r3, [r0, #6]
      ldr r4, [r0, #4]
      movs r5, #3
      ldrsb r6, [r0, r5]
      movs r5, #2
      ldrsh r7, [r0, r5]
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, SpRelativeAndAdr) {
  EXPECT_EQ(cosim(R"(
      sub sp, #16
      movs r0, #42
      str r0, [sp, #4]
      ldr r1, [sp, #4]
      add r2, sp, #8
      adr r3, data
      add sp, #16
      bkpt #0
    data:
      nop
  )"), "");
}

TEST(Cm0Cosim, BranchesAndConditions) {
  EXPECT_EQ(cosim(R"(
      movs r0, #0
      movs r1, #5
    loop:
      adds r0, #1
      cmp r0, r1
      blt loop
      beq done
      movs r7, #9
    done:
      movs r2, #1
      cmp r2, #2
      bhi bad
      bls good
    bad:
      movs r6, #99
    good:
      b fin
      movs r5, #88
    fin:
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, HiRegistersAndBx) {
  EXPECT_EQ(cosim(R"(
      movs r0, #100
      mov r9, r0
      add r9, r0
      mov r1, r9
      adr r2, target
      adds r2, #1          ; thumb bit
      bx r2
      movs r7, #77         ; skipped
    target:
      movs r3, #3
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, BlAndBlxLinkage) {
  EXPECT_EQ(cosim(R"(
      movs r0, #0
      bl fn
      adds r0, #1
      adr r4, fn
      adds r4, #1
      blx r4
      adds r0, #2
      bkpt #0
      nop                  ; align fn to a 4-byte boundary for adr
    fn:
      adds r0, #16
      bx lr
  )"), "");
}

TEST(Cm0Cosim, PushPopNesting) {
  EXPECT_EQ(cosim(R"(
      movs r0, #1
      movs r1, #2
      movs r2, #3
      push {r0, r1, r2}
      movs r0, #0
      movs r1, #0
      pop {r0, r1}
      push {r2, lr}
      pop {r0}
      pop {r3}
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, PopToPcReturns) {
  EXPECT_EQ(cosim(R"(
      movs r0, #0
      bl fn
      adds r0, #1
      bkpt #0
    fn:
      push {r1, lr}
      adds r0, #4
      pop {r1, pc}
  )"), "");
}

TEST(Cm0Cosim, StmLdmWalk) {
  EXPECT_EQ(cosim(R"(
      li r0, 0x2000
      movs r1, #17
      movs r2, #34
      movs r3, #51
      stm r0, {r1, r2, r3}
      li r4, 0x2000
      ldm r4, {r5, r6, r7}
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, FullListPushPopAndSingleRegisterStmLdm) {
  // Directed lockstep anchor for the fuzzer's multi-transfer coverage
  // (src/fuzz/): the densest reglist the generator can emit plus the
  // degenerate single-register stm/ldm forms.
  EXPECT_EQ(cosim(R"(
      movs r0, #1
      movs r1, #2
      movs r2, #3
      movs r3, #4
      movs r4, #5
      movs r5, #6
      movs r6, #7
      movs r7, #8
      push {r0, r1, r2, r3, r4, r5, r6, r7, lr}
      movs r0, #0
      movs r3, #0
      movs r7, #0
      pop {r0, r1, r2, r3, r4, r5, r6, r7}
      li r6, 0x2100
      stm r6, {r7}
      li r5, 0x2100
      ldm r5, {r0}
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, LdmStmWritebackFeedsNextInstruction) {
  // The base-register writeback of ldm/stm is itself a RAW hazard source:
  // use the written-back base as data and as an address immediately after.
  EXPECT_EQ(cosim(R"(
      li r4, 0x2200
      movs r0, #9
      stm r4, {r0}        @ writeback: r4 -> 0x2204
      subs r4, #4
      ldm r4, {r1, r2}    @ writeback: r4 -> 0x2208
      str r4, [r4, #0]    @ store the writeback value at itself
      ldr r3, [r4, #0]
      adds r3, r3, r1     # and fold in the ldm-loaded data
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, ExtendAndReverse) {
  EXPECT_EQ(cosim(R"(
      li r0, 0x8199aabb
      sxtb r1, r0
      sxth r2, r0
      uxtb r3, r0
      uxth r4, r0
      rev r5, r0
      rev16 r6, r0
      revsh r7, r0
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, MulsSerialUnit) {
  EXPECT_EQ(cosim(R"(
      li r0, 123456
      movs r1, #201
      muls r0, r1
      li r2, 0xffffffff
      li r3, 0xffffffff
      muls r2, r3
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, HintsAndBarriersAreNops) {
  EXPECT_EQ(cosim(R"(
      movs r0, #1
      nop
      sev
      wfe
      yield
      dmb
      dsb
      isb
      adds r0, #1
      bkpt #0
  )"), "");
}

TEST(Cm0Cosim, UndefinedHalts) {
  Cm0Testbench tb(cm0());
  tb.load_halfwords(0, {0xdeff});  // udf #0xff
  tb.reset();
  EXPECT_LT(tb.run(50), 50u);
}

class Cm0RandomDp : public ::testing::TestWithParam<int> {};

// Random data-processing streams (no branches/stores) cross-checked.
TEST_P(Cm0RandomDp, StreamsMatchIss) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  std::vector<std::uint16_t> prog;
  const char* ops[] = {"lsls", "lsrs", "asrs", "adds", "subs", "adds.i3", "subs.i3", "movs.i8",
                       "cmp.i8", "adds.i8", "subs.i8", "ands", "eors", "lsls.r", "lsrs.r",
                       "asrs.r", "adcs", "sbcs", "rors", "tst", "rsbs", "cmp.r", "cmn", "orrs",
                       "bics", "mvns", "sxth", "sxtb", "uxth", "uxtb", "rev", "rev16", "revsh"};
  for (int i = 0; i < 80; ++i) {
    const auto& spec = isa::thumb_instr(ops[rng.below(std::size(ops))]);
    prog.push_back(static_cast<std::uint16_t>(isa::thumb_sample(spec, rng)));
  }
  prog.push_back(static_cast<std::uint16_t>(isa::thumb_instr("bkpt").match));
  EXPECT_EQ(cm0_cosim_against_iss(cm0(), prog), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, Cm0RandomDp, ::testing::Range(1, 11));

TEST(ThumbTable, SizeNearPaperCount) {
  // The paper counts 83 ARMv6-M instructions; our mnemonic granularity
  // lands at 81 (documented in EXPERIMENTS.md).
  EXPECT_GE(isa::thumb_instructions().size(), 78u);
  EXPECT_LE(isa::thumb_instructions().size(), 84u);
}

TEST(ThumbEncoding, SampleDecodeRoundTrip) {
  Rng rng(11);
  for (const auto& spec : isa::thumb_instructions()) {
    for (int k = 0; k < 40; ++k) {
      const std::uint32_t w = isa::thumb_sample(spec, rng);
      const auto* dec = spec.wide
                            ? isa::thumb_decode(static_cast<std::uint16_t>(w),
                                                static_cast<std::uint16_t>(w >> 16))
                            : isa::thumb_decode(static_cast<std::uint16_t>(w));
      ASSERT_NE(dec, nullptr) << spec.name << " " << std::hex << w;
      EXPECT_EQ(dec->name, spec.name) << std::hex << w;
    }
  }
}

TEST(ThumbSubsets, InterestingSubsetIsAll16Bit) {
  const auto s = isa::thumb_subset_interesting();
  EXPECT_FALSE(s.has_wide());
  EXPECT_FALSE(s.contains("muls"));
  EXPECT_TRUE(s.contains("adds"));
  EXPECT_LT(s.size(), isa::thumb_subset_all().size());
}

}  // namespace
}  // namespace pdat::cores
