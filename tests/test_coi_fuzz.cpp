// Differential fuzz harness for cone-of-influence proof localization and
// the content-addressed proof cache (ISSUE 4).
//
// For every seed, the same proof problem runs through four arms:
//
//   global     — whole-netlist templates, no cache (the reference engine)
//   localized  — COI cones, no cache
//   cache-cold — COI cones, fresh on-disk cache (populates it)
//   cache-warm — COI cones, the cache just populated, and a different
//                worker-thread count for good measure
//
// All four must prove the *identical* candidate list (order included) and
// produce bit-identical rewired netlists. Counterexample replay is off in
// every arm (localized jobs disable it structurally; the global arm must
// match configuration, not emulate it). A third of the seeds also pin a
// random net as an environment assume — exercised only when the assume is
// satisfiable, since a vacuous environment is rejected by the pipeline
// before any engine runs.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "formal/bmc.h"
#include "formal/coi.h"
#include "formal/induction.h"
#include "pdat/property_library.h"
#include "pdat/rewire.h"
#include "test_util.h"
#include "util/rng.h"

namespace pdat {
namespace {

std::string cache_path(std::uint64_t seed) {
  return (std::filesystem::temp_directory_path() /
          ("pdat_coi_fuzz_" + std::to_string(seed) + ".pdatpc"))
      .string();
}

struct ArmResult {
  std::vector<std::string> proven;  // describe() of each proved prop, in order
  CacheKey rewired;                 // content hash of the rewired netlist
  InductionStats st;
};

ArmResult run_arm(const Netlist& nl, const Environment& env,
                  const std::vector<GateProperty>& cands, bool coi, const std::string& cache,
                  int threads) {
  InductionOptions opt;
  opt.cex_sim_cycles = 0;
  opt.threads = threads;
  opt.coi_localize = coi;
  opt.proof_cache_path = cache;
  ArmResult res;
  const std::vector<GateProperty> proven = prove_invariants(nl, env, cands, opt, &res.st);
  res.proven.reserve(proven.size());
  for (const GateProperty& p : proven) res.proven.push_back(p.describe());
  Netlist rewired = nl;
  apply_rewiring(rewired, proven);
  Fnv128 h;
  hash_netlist(h, rewired);
  res.rewired = h.digest();
  return res;
}

class CoiFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CoiFuzz, LocalizedAndCachedArmsMatchGlobalBitForBit) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Netlist nl = test::random_netlist(seed, 5, 48, 6, 4);

  Environment env;
  if (seed % 3 == 0) {
    // Deterministically pick a gate output as an assume; keep it only when
    // the restricted environment still has allowed executions. The "assume"
    // stream is split off the test seed with util::derive_seed so the draw
    // is independent of the netlist generator's stream on every platform.
    Rng rng(util::derive_seed(seed, "assume"));
    std::vector<NetId> outs;
    for (CellId id : nl.live_cells()) {
      const Cell& c = nl.cell(id);
      if (!cell_is_const(c.kind)) outs.push_back(c.out);
    }
    ASSERT_FALSE(outs.empty());
    env.add_assume(outs[rng.below(outs.size())]);
    if (!env_satisfiable(nl, env, 4)) env.assumes.clear();
  }

  const std::vector<GateProperty> cands = annotate_netlist(nl);
  ASSERT_FALSE(cands.empty());

  const std::string cache = cache_path(seed);
  std::filesystem::remove(cache);

  const ArmResult global = run_arm(nl, env, cands, /*coi=*/false, "", 1);
  const ArmResult local = run_arm(nl, env, cands, /*coi=*/true, "", 1);
  const ArmResult cold = run_arm(nl, env, cands, /*coi=*/true, cache, 1);
  const ArmResult warm = run_arm(nl, env, cands, /*coi=*/true, cache, 3);
  std::filesystem::remove(cache);

  EXPECT_FALSE(global.st.coi_localized);
  EXPECT_TRUE(local.st.coi_localized);

  EXPECT_EQ(global.proven, local.proven);
  EXPECT_EQ(global.proven, cold.proven);
  EXPECT_EQ(global.proven, warm.proven);

  EXPECT_EQ(global.rewired, local.rewired);
  EXPECT_EQ(global.rewired, cold.rewired);
  EXPECT_EQ(global.rewired, warm.rewired);

  // The cold arm populates the cache; the warm arm must replay everything
  // (COI job keys are independent of round number, run, and thread count).
  EXPECT_GT(cold.st.cache_stores, 0u);
  EXPECT_GT(warm.st.cache_hits, 0u);
  EXPECT_EQ(warm.st.cache_misses, 0u);
}

TEST_P(CoiFuzz, ProvenInvariantsSurviveLocalizedBmc) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  if (seed % 17 != 0) GTEST_SKIP() << "BMC cross-check runs on a seed subsample";
  Netlist nl = test::random_netlist(seed, 5, 48, 6, 4);
  Environment env;
  const std::vector<GateProperty> cands = annotate_netlist(nl);
  InductionOptions opt;
  opt.cex_sim_cycles = 0;
  opt.coi_localize = true;
  const std::vector<GateProperty> proven = prove_invariants(nl, env, cands, opt);
  ProofCache mem_cache;  // in-memory: exercises the BMC cache path too
  for (const GateProperty& p : proven) {
    BmcCheckOptions bopt;
    bopt.depth = 6;
    bopt.coi_localize = true;
    bopt.cache = &mem_cache;
    const BmcResult localized = bmc_check(nl, env, p, bopt);
    EXPECT_FALSE(localized.violated)
        << p.describe() << " violated at frame " << localized.violation_frame;
    const BmcResult global = bmc_check(nl, env, p, 6);
    EXPECT_EQ(localized.violated, global.violated) << p.describe();
  }
}

// ISSUE 4 requires >= 200 fuzz seeds in CI.
INSTANTIATE_TEST_SUITE_P(Seeds, CoiFuzz, ::testing::Range(1, 201));

}  // namespace
}  // namespace pdat
