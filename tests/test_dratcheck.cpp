// Certified solving (ISSUE 6): unit and differential-fuzz coverage for the
// DRAT log, the independent RUP/DRAT checker, and CertifySession.
//
// Three layers of evidence:
//   * hand-built logs exercise checker semantics directly (RUP acceptance,
//     operational deletion, root-conflict latching, model verification);
//   * certificate mutations (drop a line, flip a literal, reorder a
//     deletion ahead of the addition that needed the clause, truncate) are
//     rejected on fixed deterministic instances;
//   * a 200-seed solver-vs-checker agreement arm (style of test_coi_fuzz)
//     certifies every verdict on random 3-SAT instances, cross-checked
//     against brute-force enumeration, including assumption cores and
//     incremental reuse of one session across solve calls.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <vector>

#include "base/types.h"
#include "sat/dratcheck.h"
#include "sat/solver.h"

namespace pdat::sat {
namespace {

Lit pos(Var v) { return mk_lit(v); }
Lit neg(Var v) { return mk_lit(v, true); }

void append(DratLog& log, DratLineKind kind, std::vector<Lit> lits) {
  log.append(kind, lits.data(), lits.size());
}

/// Copies `log` minus line `drop`.
DratLog without_line(const DratLog& log, std::size_t drop) {
  DratLog out;
  for (std::size_t i = 0; i < log.num_lines(); ++i) {
    if (i == drop) continue;
    out.append(log.kind(i), log.line_lits(i), log.line_size(i));
  }
  return out;
}

/// Copies `log` with literal `idx` of line `line` negated.
DratLog with_flip(const DratLog& log, std::size_t line, std::size_t idx) {
  DratLog out;
  for (std::size_t i = 0; i < log.num_lines(); ++i) {
    std::vector<Lit> lits(log.line_lits(i), log.line_lits(i) + log.line_size(i));
    if (i == line) lits[idx] = ~lits[idx];
    out.append(log.kind(i), lits.data(), lits.size());
  }
  return out;
}

/// Copies only the first `n` lines.
DratLog truncated(const DratLog& log, std::size_t n) {
  DratLog out;
  for (std::size_t i = 0; i < n && i < log.num_lines(); ++i)
    out.append(log.kind(i), log.line_lits(i), log.line_size(i));
  return out;
}

/// "The certificate proves unconditional UNSAT": replays cleanly and derives
/// the empty clause.
bool proves_unsat(const DratLog& log) {
  DratChecker ck;
  return ck.consume(log, 0) && ck.root_conflict();
}

/// Pigeonhole instance: `holes`+1 pigeons into `holes` holes (UNSAT, needs
/// real clause learning). Returns the solver with logging attached to `log`.
void encode_pigeonhole(Solver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> p(static_cast<std::size_t>(pigeons),
                                  std::vector<Var>(static_cast<std::size_t>(holes)));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h)
      c.push_back(pos(p[static_cast<std::size_t>(i)][static_cast<std::size_t>(h)]));
    s.add_clause(c);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        s.add_clause(neg(p[static_cast<std::size_t>(i)][static_cast<std::size_t>(h)]),
                     neg(p[static_cast<std::size_t>(j)][static_cast<std::size_t>(h)]));
}

// --- checker semantics on hand-built logs -----------------------------------

TEST(DratCheck, EmptyLogHasNoConflict) {
  DratLog log;
  DratChecker ck;
  EXPECT_TRUE(ck.consume(log, 0));
  EXPECT_FALSE(ck.root_conflict());
}

TEST(DratCheck, RupAdditionAcceptedAndConflictDerived) {
  // (a|b)(~a|b)(a|~b)(~a|~b): adding unit b is RUP, then unit ~b closes it.
  DratLog log;
  append(log, DratLineKind::Original, {pos(0), pos(1)});
  append(log, DratLineKind::Original, {neg(0), pos(1)});
  append(log, DratLineKind::Original, {pos(0), neg(1)});
  append(log, DratLineKind::Original, {neg(0), neg(1)});
  append(log, DratLineKind::Add, {pos(1)});
  append(log, DratLineKind::Add, {neg(1)});
  EXPECT_TRUE(proves_unsat(log));
}

TEST(DratCheck, NonRupAdditionRejected) {
  DratLog log;
  append(log, DratLineKind::Original, {pos(0), pos(1)});
  append(log, DratLineKind::Add, {pos(0)});  // not implied
  DratChecker ck;
  EXPECT_FALSE(ck.consume(log, 0));
  EXPECT_FALSE(ck.error().empty());
}

TEST(DratCheck, DeletionIsOperationalAndReorderingIsCaught) {
  DratLog good;
  append(good, DratLineKind::Original, {pos(0), pos(1)});
  append(good, DratLineKind::Original, {neg(0), pos(1)});
  append(good, DratLineKind::Original, {pos(0), neg(1)});
  append(good, DratLineKind::Original, {neg(0), neg(1)});
  append(good, DratLineKind::Add, {pos(1)});
  append(good, DratLineKind::Delete, {pos(0), pos(1)});  // no longer needed
  append(good, DratLineKind::Add, {neg(1)});
  EXPECT_TRUE(proves_unsat(good));

  // The same deletion moved before the addition that needs (a|b): the unit b
  // is no longer RUP.
  DratLog bad;
  append(bad, DratLineKind::Original, {pos(0), pos(1)});
  append(bad, DratLineKind::Original, {neg(0), pos(1)});
  append(bad, DratLineKind::Original, {pos(0), neg(1)});
  append(bad, DratLineKind::Original, {neg(0), neg(1)});
  append(bad, DratLineKind::Delete, {pos(0), pos(1)});
  append(bad, DratLineKind::Add, {pos(1)});
  append(bad, DratLineKind::Add, {neg(1)});
  EXPECT_FALSE(proves_unsat(bad));
}

TEST(DratCheck, UnmatchedDeletionIgnored) {
  DratLog log;
  append(log, DratLineKind::Original, {pos(0), pos(1)});
  append(log, DratLineKind::Delete, {pos(0), pos(2)});  // never added
  DratChecker ck;
  EXPECT_TRUE(ck.consume(log, 0));
  EXPECT_FALSE(ck.root_conflict());
}

TEST(DratCheck, TautologyAndDuplicateLiteralsHandled) {
  DratLog log;
  append(log, DratLineKind::Original, {pos(0), neg(0)});  // tautology
  append(log, DratLineKind::Original, {pos(1), pos(1)});  // semantically unit
  append(log, DratLineKind::Original, {neg(1), pos(2)});
  DratChecker ck;
  ASSERT_TRUE(ck.consume(log, 0));
  EXPECT_FALSE(ck.root_conflict());
  // (b b) must behave as unit b: c is forced, so {~c} has to be refutable.
  const std::vector<Lit> c{pos(2)};
  EXPECT_TRUE(ck.check_rup(c));
}

TEST(DratCheck, ModelVerifierChecksOriginalLinesOnly) {
  DratLog log;
  append(log, DratLineKind::Original, {pos(0), pos(1)});
  append(log, DratLineKind::Original, {neg(0), pos(1)});
  append(log, DratLineKind::Add, {pos(1)});
  std::string err;
  EXPECT_TRUE(verify_model(log, {false, true}, &err));
  EXPECT_FALSE(verify_model(log, {true, false}, &err));
  EXPECT_FALSE(err.empty());
  // Add lines are not obligations: a model only has to satisfy originals.
  DratLog only_add;
  append(only_add, DratLineKind::Add, {pos(3)});
  EXPECT_TRUE(verify_model(only_add, {false, false, false, false}, nullptr));
}

// --- solver-emitted certificates --------------------------------------------

TEST(DratCheck, SolverCertificateChecksAndMutationsAreRejected) {
  Solver s;
  DratLog log;
  s.start_proof(&log);
  encode_pigeonhole(s, 4);
  ASSERT_EQ(s.solve(), SolveResult::Unsat);
  s.stop_proof();
  ASSERT_TRUE(proves_unsat(log));

  // Truncation: find the shortest prefix that still derives the empty
  // clause; one line less must fail (this is guaranteed, not empirical).
  std::size_t min_prefix = log.num_lines();
  while (min_prefix > 0 && proves_unsat(truncated(log, min_prefix - 1))) --min_prefix;
  ASSERT_GT(min_prefix, 0u);
  EXPECT_FALSE(proves_unsat(truncated(log, min_prefix - 1)));

  // Dropping ANY original clause must be rejected: PHP minus a clause is
  // satisfiable, and a sound checker never accepts an UNSAT certificate for
  // a satisfiable formula — whatever the remaining lines claim.
  std::size_t n_adds = 0;
  for (std::size_t i = 0; i < log.num_lines(); ++i) {
    if (log.kind(i) == DratLineKind::Original) {
      EXPECT_FALSE(proves_unsat(without_line(log, i))) << "dropped original line " << i;
    } else if (log.kind(i) == DratLineKind::Add) {
      ++n_adds;
    }
  }
  ASSERT_GT(n_adds, 2u) << "instance too easy to exercise mutations";

  // Dropping or literal-flipping learnt lines is not *guaranteed* to break
  // the certificate (PHP stays UNSAT, and RUP replay can route around a
  // redundant clause), but on this fixed deterministic instance the checker
  // must reject the large majority — a vacuous checker would accept all.
  std::size_t flip_rejected = 0, drop_rejected = 0;
  for (std::size_t i = 0; i < log.num_lines(); ++i) {
    if (log.kind(i) != DratLineKind::Add) continue;
    if (!proves_unsat(with_flip(log, i, 0))) ++flip_rejected;
    if (!proves_unsat(without_line(log, i))) ++drop_rejected;
  }
  EXPECT_GE(3 * flip_rejected, 2 * n_adds);
  EXPECT_GE(3 * drop_rejected, 2 * n_adds);
}

TEST(DratCheck, CertifySessionAcceptsBothVerdicts) {
  Solver s;
  CertifySession cert(s);
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(b));
  s.add_clause(neg(a), pos(b));
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_NO_THROW(cert.check(SolveResult::Sat, {}, "sat"));
  // Incremental: same session keeps certifying after more clauses.
  s.add_clause(neg(b));
  ASSERT_EQ(s.solve(), SolveResult::Unsat);
  EXPECT_NO_THROW(cert.check(SolveResult::Unsat, {}, "unsat"));
  EXPECT_NE(cert.certificate_hash(), 0u);
}

TEST(DratCheck, CertifySessionChecksAssumptionCores) {
  Solver s;
  CertifySession cert(s);
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(neg(a), neg(b));
  std::vector<Lit> both{pos(a), pos(b)};
  ASSERT_EQ(s.solve(both), SolveResult::Unsat);
  EXPECT_NO_THROW(cert.check(SolveResult::Unsat, both, "assume-unsat"));
  std::vector<Lit> one{pos(a)};
  ASSERT_EQ(s.solve(one), SolveResult::Sat);
  EXPECT_NO_THROW(cert.check(SolveResult::Sat, one, "assume-sat"));
}

TEST(DratCheck, CertifySessionSnapshotsTemplateSolvers) {
  // Build a template (no logging), copy it, and certify solves on the copy —
  // the induction engine's exact usage pattern.
  Solver tmpl;
  const Var a = tmpl.new_var(), b = tmpl.new_var(), c = tmpl.new_var();
  tmpl.add_clause(pos(a));                  // canonicalizes to a root unit
  tmpl.add_clause(neg(a), pos(b), pos(c));  // stays a problem clause
  tmpl.add_clause(neg(b), pos(c));
  Solver s = tmpl;
  CertifySession cert(s);
  std::vector<Lit> assume{neg(c)};
  ASSERT_EQ(s.solve(assume), SolveResult::Unsat);
  EXPECT_NO_THROW(cert.check(SolveResult::Unsat, assume, "template-unsat"));
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_NO_THROW(cert.check(SolveResult::Sat, {}, "template-sat"));
}

TEST(DratCheck, StartProofAfterLearningThrows) {
  Solver s;
  encode_pigeonhole(s, 4);
  ASSERT_EQ(s.solve(), SolveResult::Unsat);
  DratLog log;
  EXPECT_THROW(s.start_proof(&log), PdatError);
}

TEST(DratCheck, SnapshotJustifiesRootUnsatSolver) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(pos(a));
  EXPECT_FALSE(s.add_clause(neg(a)));  // canonicalizes to the empty clause
  DratLog log;
  s.start_proof(&log);  // snapshot after the fact
  EXPECT_TRUE(proves_unsat(log));
  CertifySession cert(s);
  ASSERT_EQ(s.solve(), SolveResult::Unsat);
  EXPECT_NO_THROW(cert.check(SolveResult::Unsat, {}, "root-unsat"));
}

TEST(DratCheck, CorruptedSolverIsCaught) {
  // The ISSUE 6 acceptance hook: a solver that mis-learns one clause must be
  // rejected by the checker, never silently produce a trusted verdict.
  Solver s;
  CertifySession cert(s);
  encode_pigeonhole(s, 4);
  s.test_corrupt_next_learnt();
  const SolveResult r = s.solve();
  EXPECT_THROW(cert.check(r, {}, "corrupted"), CertificationError);
}

TEST(DratCheck, LyingUnsatVerdictIsRejected) {
  // Guaranteed-rejection arm: claim UNSAT on a satisfiable instance. The
  // checker cannot derive the empty clause, whatever the trace contains.
  Solver s;
  CertifySession cert(s);
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(b));
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_THROW(cert.check(SolveResult::Unsat, {}, "lying"), CertificationError);
}

// --- 200-seed solver-vs-checker agreement fuzz ------------------------------

class DratFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DratFuzz, EveryVerdictOnRandomCnfCertifies) {
  std::uint64_t state = static_cast<std::uint64_t>(GetParam()) * 0x9E3779B97F4A7C15ULL + 1;
  auto rnd = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  const int nv = 12;
  const int nc = 30 + static_cast<int>(rnd() % 35);
  std::vector<std::array<int, 3>> clauses;
  for (int c = 0; c < nc; ++c) {
    std::array<int, 3> cl{};
    for (int k = 0; k < 3; ++k) {
      const int var = static_cast<int>(rnd() % nv);
      cl[static_cast<std::size_t>(k)] = (rnd() & 1) != 0 ? -(var + 1) : (var + 1);
    }
    clauses.push_back(cl);
  }
  bool brute_sat = false;
  for (int m = 0; m < (1 << nv) && !brute_sat; ++m) {
    bool ok = true;
    for (const auto& cl : clauses) {
      bool cok = false;
      for (int lit : cl) {
        const int v = std::abs(lit) - 1;
        if ((lit > 0) == (((m >> v) & 1) != 0)) {
          cok = true;
          break;
        }
      }
      if (!cok) {
        ok = false;
        break;
      }
    }
    brute_sat = ok;
  }

  Solver s;
  CertifySession cert(s);
  std::vector<Var> vars;
  for (int v = 0; v < nv; ++v) vars.push_back(s.new_var());
  for (const auto& cl : clauses) {
    std::vector<Lit> lits;
    for (int lit : cl)
      lits.push_back(mk_lit(vars[static_cast<std::size_t>(std::abs(lit) - 1)], lit < 0));
    s.add_clause(lits);
  }
  const SolveResult r = s.solve();
  EXPECT_EQ(r == SolveResult::Sat, brute_sat);
  ASSERT_NO_THROW(cert.check(r, {}, "fuzz"));

  // Second certified solve in the same session, under random assumptions.
  std::vector<Lit> assume;
  for (int k = 0; k < 3; ++k)
    assume.push_back(mk_lit(vars[rnd() % static_cast<std::uint64_t>(nv)], (rnd() & 1) != 0));
  const SolveResult ra = s.solve(assume);
  ASSERT_NO_THROW(cert.check(ra, assume, "fuzz-assume"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DratFuzz, ::testing::Range(1, 201));

}  // namespace
}  // namespace pdat::sat
