#include <gtest/gtest.h>

#include "formal/bmc.h"
#include "formal/candidates.h"
#include "formal/cnf_encoder.h"
#include "formal/induction.h"
#include "sim/bitsim.h"
#include "synth/builder.h"
#include "test_util.h"

namespace pdat {
namespace {

GateProperty const0(NetId n) {
  GateProperty p;
  p.kind = PropKind::Const0;
  p.target = n;
  return p;
}

GateProperty const1(NetId n) {
  GateProperty p;
  p.kind = PropKind::Const1;
  p.target = n;
  return p;
}

GateProperty implies(NetId a, NetId b) {
  GateProperty p;
  p.kind = PropKind::Implies;
  p.a = a;
  p.b = b;
  return p;
}

// --- frame encoding consistency ---------------------------------------------

class FrameEncoding : public ::testing::TestWithParam<int> {};

TEST_P(FrameEncoding, ModelMatchesSimulator) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Netlist nl = test::random_netlist(seed, 6, 80, 8, 4);
  FrameEncoder enc(nl);
  sat::Solver s;
  const Frame f = enc.encode(s);
  // Pin primary inputs and flop outputs to random values; every other net
  // must then take exactly the simulated value.
  BitSim sim(nl);
  Rng rng(seed * 31 + 7);
  for (const auto& p : nl.inputs()) {
    for (NetId n : p.bits) {
      const bool v = rng.chance(128);
      sim.set_input(n, v ? ~0ULL : 0);
      s.add_clause(f.lit(n, v));
    }
  }
  for (CellId flop : sim.levels().flops) {
    const bool v = rng.chance(128);
    sim.set_flop_state(flop, v ? ~0ULL : 0);
    s.add_clause(f.lit(nl.cell(flop).out, v));
  }
  sim.eval();
  ASSERT_EQ(s.solve(), sat::SolveResult::Sat);
  for (CellId id : sim.levels().comb_order) {
    const NetId n = nl.cell(id).out;
    EXPECT_EQ(s.model_value(f.net_var[n]), sim.value(n) != 0) << "net " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameEncoding, ::testing::Range(1, 13));

TEST(FrameEncoding, LinkTransfersState) {
  // Counter: q <= q + 1 (2 bits). After linking two frames with q0 = 1,
  // frame 1 must show q = 2.
  Netlist nl;
  synth::Builder b(nl);
  auto r = b.reg_decl(2, 0);
  b.connect(r, b.add_const(r.q, 1));
  b.output("q", r.q);
  FrameEncoder enc(nl);
  sat::Solver s;
  const Frame f0 = enc.encode(s);
  const Frame f1 = enc.encode(s);
  enc.link(s, f0, f1);
  s.add_clause(f0.lit(r.q[0], true));
  s.add_clause(f0.lit(r.q[1], false));
  ASSERT_EQ(s.solve(), sat::SolveResult::Sat);
  EXPECT_FALSE(s.model_value(f1.net_var[r.q[0]]));
  EXPECT_TRUE(s.model_value(f1.net_var[r.q[1]]));
}

// --- induction ----------------------------------------------------------------

TEST(Induction, EnableConstrainedCounterStaysZero) {
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto r = b.reg_decl(4, 0);
  b.connect(r, b.mux(en[0], r.q, b.add_const(r.q, 1)));
  b.output("q", r.q);
  // Environment: en == 0, i.e. assume NOT(en).
  Environment env;
  env.add_assume(b.not_(en[0]));

  std::vector<GateProperty> cands;
  for (NetId n : r.q) cands.push_back(const0(n));
  InductionStats st;
  auto proven = prove_invariants(nl, env, cands, {}, &st);
  EXPECT_EQ(proven.size(), 4u);
  EXPECT_EQ(st.proven, 4u);
}

TEST(Induction, UnconstrainedCounterBitsKilled) {
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto r = b.reg_decl(4, 0);
  b.connect(r, b.mux(en[0], r.q, b.add_const(r.q, 1)));
  b.output("q", r.q);
  Environment env;  // no restriction
  std::vector<GateProperty> cands;
  for (NetId n : r.q) cands.push_back(const0(n));
  auto proven = prove_invariants(nl, env, cands);
  EXPECT_TRUE(proven.empty());
}

TEST(Induction, MutualInductionChain) {
  // q1 <= en (en constrained to 0), q2 <= q1. "q2 == 0" is not 1-inductive
  // alone but is provable together with "q1 == 0".
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto r1 = b.reg_decl(1, 0);
  b.connect(r1, synth::Bus{en[0]});
  auto r2 = b.reg_decl(1, 0);
  b.connect(r2, r1.q);
  b.output("q", r2.q);
  Environment env;
  env.add_assume(b.not_(en[0]));

  // Alone: killed (the inductive hypothesis lacks q1 == 0).
  auto alone = prove_invariants(nl, env, {const0(r2.q[0])});
  EXPECT_TRUE(alone.empty());

  // Together: both proven.
  auto both = prove_invariants(nl, env, {const0(r1.q[0]), const0(r2.q[0])});
  EXPECT_EQ(both.size(), 2u);
}

TEST(Induction, DeeperKProvesWhatOneInductionCannot) {
  // q1 <= en (env forces en == 0), q2 <= q1. With ONLY "q2 == 0" as a
  // candidate, 1-induction fails (q1 is unconstrained in the hypothesis)
  // but 2-induction succeeds: assuming q2==0 at t and t+1 pins the path
  // en@t -> q1@t+1 -> q2@t+2 through the environment.
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto r1 = b.reg_decl(1, 0);
  b.connect(r1, synth::Bus{en[0]});
  auto r2 = b.reg_decl(1, 0);
  b.connect(r2, r1.q);
  b.output("q", r2.q);
  Environment env;
  env.add_assume(b.not_(en[0]));

  InductionOptions k1;
  k1.k = 1;
  EXPECT_TRUE(prove_invariants(nl, env, {const0(r2.q[0])}, k1).empty());

  InductionOptions k2;
  k2.k = 2;
  EXPECT_EQ(prove_invariants(nl, env, {const0(r2.q[0])}, k2).size(), 1u);
}

TEST(Induction, DeepKStillRejectsReachableViolations) {
  // A counter with a free enable: no bit is invariant at any k.
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto r = b.reg_decl(3, 0);
  b.connect(r, b.mux(en[0], r.q, b.add_const(r.q, 1)));
  b.output("q", r.q);
  Environment env;
  InductionOptions k3;
  k3.k = 3;
  std::vector<GateProperty> cands;
  for (NetId n : r.q) cands.push_back(const0(n));
  EXPECT_TRUE(prove_invariants(nl, env, cands, k3).empty());
}

TEST(Induction, BaseCaseKillsInductiveButUnreachableInvariant) {
  // q <= q with init 1: "q == 0" is 1-inductive (0 -> 0) but fails at reset.
  Netlist nl;
  synth::Builder b(nl);
  auto r = b.reg_decl(1, 1);
  b.connect(r, r.q);
  b.output("q", r.q);
  Environment env;
  InductionStats st;
  auto proven = prove_invariants(nl, env, {const0(r.q[0]), const1(r.q[0])}, {}, &st);
  ASSERT_EQ(proven.size(), 1u);
  EXPECT_EQ(proven[0].kind, PropKind::Const1);
}

TEST(Induction, ImplicationPropertyProven) {
  // y = a AND b. Environment: a -> b is forced by constraining inputs:
  // assume (a implies b). Then the gate input implication a->b holds, and
  // the AND's output equals a.
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 1);
  auto bb = b.input("b", 1);
  const NetId y = b.and_(a[0], bb[0]);
  b.output("y", {y});
  Environment env;
  env.add_assume(b.implies(a[0], bb[0]));
  auto proven = prove_invariants(nl, env, {implies(a[0], bb[0]), implies(bb[0], a[0])});
  ASSERT_EQ(proven.size(), 1u);
  EXPECT_EQ(proven[0].a, a[0]);
}

TEST(Induction, XInitFlopNotProvenConstant) {
  // q <= q with X init: neither const0 nor const1 may be proven.
  Netlist nl;
  synth::Builder b(nl);
  auto r = b.reg_decl_x(1);
  b.connect(r, r.q);
  b.output("q", r.q);
  Environment env;
  auto proven = prove_invariants(nl, env, {const0(r.q[0]), const1(r.q[0])});
  EXPECT_TRUE(proven.empty());
}

// --- proved invariants never have bounded counterexamples ---------------------

class InductionSoundness : public ::testing::TestWithParam<int> {};

TEST_P(InductionSoundness, ProvenInvariantsHoldUnderBmc) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Netlist nl = test::random_netlist(seed, 5, 60, 6, 4);
  Environment env;  // unconstrained
  // Candidates: const0/const1 for every gate output.
  std::vector<GateProperty> cands;
  for (CellId id : nl.live_cells()) {
    const auto& c = nl.cell(id);
    if (cell_is_const(c.kind)) continue;
    cands.push_back(const0(c.out));
    cands.push_back(const1(c.out));
  }
  auto proven = prove_invariants(nl, env, cands);
  for (const auto& p : proven) {
    const BmcResult r = bmc_check(nl, env, p, 6);
    EXPECT_FALSE(r.violated) << p.describe() << " violated at frame " << r.violation_frame;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InductionSoundness, ::testing::Range(1, 9));

// --- resource exhaustion degrades conservatively ------------------------------

TEST(Induction, TinyConflictBudgetDropsCandidatesNeverProvesUnsoundly) {
  // With a one-conflict budget nearly every UNSAT certificate is out of
  // reach: the prover must drop candidates as inconclusive (budget_kills)
  // rather than claim them proved. Whatever it still proves (propagation-
  // only queries) must be genuinely invariant.
  Netlist nl = test::random_netlist(99, 8, 200, 16, 6);
  Environment env;
  std::vector<GateProperty> cands;
  for (CellId id : nl.live_cells()) {
    const auto& c = nl.cell(id);
    if (cell_is_const(c.kind)) continue;
    cands.push_back(const0(c.out));
    cands.push_back(const1(c.out));
  }
  InductionOptions opt;
  opt.conflict_budget = 1;
  opt.max_job_attempts = 1;  // no budget escalation: exhaustion must drop, not retry
  opt.cex_sim_cycles = 0;    // no replay accelerator: force the SAT-side path
  InductionStats st;
  const auto proven = prove_invariants(nl, env, cands, opt, &st);
  EXPECT_GT(st.budget_kills, 0u) << "expected inconclusive candidates to be dropped";
  EXPECT_EQ(st.proven, proven.size());
  for (const auto& p : proven) {
    const BmcResult r = bmc_check(nl, env, p, 6);
    EXPECT_FALSE(r.violated) << p.describe() << " proved under budget but violated at frame "
                             << r.violation_frame;
  }
}

TEST(Induction, DeadlineAbortsProvingNothing) {
  // The counter that EnableConstrainedCounterStaysZero proves in full: with
  // an immediately-expired deadline the prover must return an empty set and
  // flag the timeout, never a partially-checked survivor set.
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto r = b.reg_decl(4, 0);
  b.connect(r, b.mux(en[0], r.q, b.add_const(r.q, 1)));
  b.output("q", r.q);
  Environment env;
  env.add_assume(b.not_(en[0]));
  std::vector<GateProperty> cands;
  for (NetId n : r.q) cands.push_back(const0(n));

  InductionOptions opt;
  opt.deadline_seconds = 1e-9;
  InductionStats st;
  const auto proven = prove_invariants(nl, env, cands, opt, &st);
  EXPECT_TRUE(proven.empty());
  EXPECT_TRUE(st.timed_out);
  EXPECT_EQ(st.proven, 0u);

  // Control: the same run without a deadline proves all four bits.
  EXPECT_EQ(prove_invariants(nl, env, cands).size(), 4u);
}

// --- simulation filter ----------------------------------------------------------

TEST(SimFilter, DropsEasilyFalsifiedCandidates) {
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 1);
  const NetId y = b.and_(a[0], b.bit(true));  // y == a: toggles
  const NetId z = b.and_(a[0], b.not_(a[0])); // z == 0 always
  b.output("o", {y, z});
  Environment env;
  SimFilterOptions opt;
  opt.cycles = 64;
  auto res = sim_filter(nl, env, {const0(y), const0(z)}, opt);
  ASSERT_EQ(res.survivors.size(), 1u);
  EXPECT_EQ(res.survivors[0].target, z);
  EXPECT_EQ(res.dropped, 1u);
}

TEST(SimFilter, RespectsEnvironmentDrivers) {
  // Instruction-style bus constrained to even values: LSB==0 must survive.
  Netlist nl;
  synth::Builder b(nl);
  auto instr = b.input("instr", 8);
  b.output("o", instr);
  Environment env;
  env.drivers.push_back(std::make_shared<SampledWordDriver>(
      instr, [](Rng& rng) { return rng.next() & 0xfe; }));
  env.add_assume(b.not_(instr[0]));
  SimFilterOptions opt;
  opt.cycles = 128;
  std::vector<GateProperty> cands = {const0(instr[0]), const0(instr[1])};
  auto res = sim_filter(nl, env, cands, opt);
  ASSERT_EQ(res.survivors.size(), 1u);
  EXPECT_EQ(res.survivors[0].target, instr[0]);
  EXPECT_EQ(res.assume_violation_cycles, 0u);
}

// --- BMC -------------------------------------------------------------------------

TEST(Bmc, FindsShallowViolation) {
  // 2-bit counter: bit1 first becomes 1 at t=2.
  Netlist nl;
  synth::Builder b(nl);
  auto r = b.reg_decl(2, 0);
  b.connect(r, b.add_const(r.q, 1));
  b.output("q", r.q);
  Environment env;
  const BmcResult r0 = bmc_check(nl, env, const0(r.q[1]), 2);
  EXPECT_FALSE(r0.violated) << "not reachable within 2 frames";
  const BmcResult r1 = bmc_check(nl, env, const0(r.q[1]), 4);
  EXPECT_TRUE(r1.violated);
  EXPECT_EQ(r1.violation_frame, 2);
}

TEST(Bmc, EnvironmentBlocksViolation) {
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto r = b.reg_decl(2, 0);
  b.connect(r, b.mux(en[0], r.q, b.add_const(r.q, 1)));
  b.output("q", r.q);
  Environment env;
  env.add_assume(b.not_(en[0]));
  EXPECT_FALSE(bmc_check(nl, env, const0(r.q[0]), 8).violated);
  Environment free_env;
  EXPECT_TRUE(bmc_check(nl, free_env, const0(r.q[0]), 8).violated);
}

// --- candidate-generation determinism ----------------------------------------

TEST(Candidates, EquivalenceCandidatesAreCanonicalForASeed) {
  // The candidate list feeds proof batching, checkpoint journals, and proof-
  // cache keys: for one seed it must be byte-identical on every run and
  // independent of hash-container iteration order. The canonical order is
  // classes ascending by representative net, members by (level, id).
  for (const std::uint64_t seed : {7ULL, 21ULL, 63ULL}) {
    Netlist nl = test::random_netlist(seed, 6, 90, 10, 4);
    Environment env;
    EquivCandidateOptions opt;
    opt.sim.seed = seed;
    const auto first = equivalence_candidates(nl, env, opt);
    const auto second = equivalence_candidates(nl, env, opt);
    ASSERT_EQ(first.size(), second.size()) << "seed " << seed;
    NetId prev_rep = 0;
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].describe(), second[i].describe()) << "seed " << seed << " at " << i;
      EXPECT_GE(first[i].a, prev_rep) << "class order must ascend by representative";
      prev_rep = first[i].a;
    }
  }
}

TEST(Candidates, ProofOfEquivalenceListIdenticalAcrossThreadCounts) {
  Netlist nl = test::random_netlist(11, 6, 90, 10, 4);
  Environment env;
  EquivCandidateOptions copt;
  copt.sim.seed = 11;
  const auto cands = equivalence_candidates(nl, env, copt);
  ASSERT_FALSE(cands.empty());
  std::vector<std::string> reference;
  for (const int threads : {1, 2, 5}) {
    InductionOptions opt;
    opt.threads = threads;
    std::vector<std::string> proven;
    for (const auto& p : prove_invariants(nl, env, cands, opt)) proven.push_back(p.describe());
    if (threads == 1)
      reference = proven;
    else
      EXPECT_EQ(reference, proven) << "threads=" << threads;
  }
}

TEST(Bmc, EnvSatisfiableDetectsVacuous) {
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 1);
  b.output("o", a);
  Environment env;
  env.add_assume(a[0]);
  env.add_assume(b.not_(a[0]));  // contradictory
  EXPECT_FALSE(env_satisfiable(nl, env, 3));
  Environment ok;
  ok.add_assume(a[0]);
  EXPECT_TRUE(env_satisfiable(nl, ok, 3));
}

}  // namespace
}  // namespace pdat
