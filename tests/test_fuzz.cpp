// Differential fuzzing subsystem (src/fuzz/): generator subset closure,
// shrinker minimality, oracle agreement on healthy cores, the failpoint-armed
// mutation self-check, and the determinism contract (fixed seed => identical
// stats and byte-identical artifacts at any thread count).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "cores/cm0/cm0_core.h"
#include "cores/ibex/ibex_core.h"
#include "fuzz/oracle.h"
#include "fuzz/shrink.h"
#include "isa/rv32_subsets.h"
#include "isa/thumb_subsets.h"
#include "opt/optimizer.h"
#include "util/failpoint.h"

using namespace pdat;
using namespace pdat::fuzz;

namespace {

const Netlist& ibex_netlist() {
  static const cores::IbexCore core = [] {
    cores::IbexCore c = cores::build_ibex();
    opt::optimize(c.netlist);
    return c;
  }();
  return core.netlist;
}

const Netlist& cm0_netlist() {
  static const cores::Cm0Core core = [] {
    cores::Cm0Core c = cores::build_cm0();
    opt::optimize(c.netlist);
    return c;
  }();
  return core.netlist;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / ("pdat_fuzz_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

/// Relative path -> file contents for every regular file under `root`.
std::map<std::string, std::string> dir_contents(const std::filesystem::path& root) {
  std::map<std::string, std::string> out;
  if (!std::filesystem::exists(root)) return out;
  for (const auto& e : std::filesystem::recursive_directory_iterator(root)) {
    if (!e.is_regular_file()) continue;
    std::ifstream is(e.path(), std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    out[std::filesystem::relative(e.path(), root).string()] = ss.str();
  }
  return out;
}

}  // namespace

// --- generators --------------------------------------------------------------

TEST(FuzzGenerator, Rv32SubsetClosureAndDeterminism) {
  const isa::RvSubset subset = isa::rv32_subset_named("rv32imc");
  const Rv32Generator gen(subset);
  const auto& table = isa::rv32_instructions();
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const AbsProgram p = gen.generate(seed);
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p, gen.generate(seed)) << "generate must be a pure function of the seed";
    // Walk the encoded byte stream and check every fetch unit decodes to a
    // subset member (the subset contract, including prologue + terminator).
    const std::vector<std::uint32_t> words = gen.encode_units(p);
    std::vector<std::uint8_t> bytes;
    for (const std::uint32_t w : words)
      for (int k = 0; k < 4; ++k) bytes.push_back(static_cast<std::uint8_t>(w >> (8 * k)));
    std::size_t at = 0;
    while (at + 1 < bytes.size()) {
      const std::uint32_t lo = bytes[at] | (static_cast<std::uint32_t>(bytes[at + 1]) << 8);
      std::uint32_t word = lo;
      std::size_t len = 2;
      if ((lo & 3) == 3) {
        ASSERT_LE(at + 4, bytes.size());
        word |= (static_cast<std::uint32_t>(bytes[at + 2]) << 16) |
                (static_cast<std::uint32_t>(bytes[at + 3]) << 24);
        len = 4;
      }
      if (word == 0) break;  // alignment padding after the terminator
      const isa::RvInstrSpec* spec = isa::rv32_decode_spec(word);
      ASSERT_NE(spec, nullptr) << "illegal encoding 0x" << std::hex << word << " at +" << at;
      EXPECT_TRUE(subset.contains(static_cast<int>(spec - table.data())))
          << spec->name << " not in " << subset.name;
      at += len;
    }
  }
}

TEST(FuzzGenerator, ThumbSubsetClosureAndDeterminism) {
  const isa::ThumbSubset subset = isa::thumb_subset_interesting();
  const ThumbGenerator gen(subset);
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const AbsProgram p = gen.generate(seed);
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p, gen.generate(seed));
    const std::vector<std::uint32_t> halves = gen.encode_units(p);
    for (std::size_t i = 0; i < halves.size(); ++i) {
      const auto h = static_cast<std::uint16_t>(halves[i]);
      ASSERT_FALSE(isa::thumb_is_wide_prefix(h))
          << "wide encodings are excluded from generated streams";
      const isa::ThumbInstrSpec* spec = isa::thumb_decode(h);
      ASSERT_NE(spec, nullptr) << "UNDEFINED halfword 0x" << std::hex << h << " at " << i;
      EXPECT_TRUE(subset.contains(spec->name)) << spec->name << " not in " << subset.name;
    }
  }
}

TEST(FuzzGenerator, Rv32RejectsSubsetWithoutTerminator) {
  // risc16 has c.jalr but no ebreak/ecall/c.ebreak: no way to halt.
  const isa::RvSubset none = isa::rv32_subset_from_names("no-halt", {"addi", "add"});
  EXPECT_THROW(Rv32Generator{none}, PdatError);
}

TEST(FuzzGenerator, MutateIsDeterministicAndStaysInSubset) {
  const isa::RvSubset subset = isa::rv32_subset_named("rv32i");
  const Rv32Generator gen(subset);
  AbsProgram p = gen.generate(7);
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    const AbsProgram m = gen.mutate(p, seed);
    EXPECT_EQ(m, gen.mutate(p, seed));
    ASSERT_FALSE(m.empty());
    p = m;  // chain mutations
  }
  for (const AbsOp& op : p) {
    if (op.spec >= 0) {
      EXPECT_TRUE(subset.contains(op.spec));
    }
  }
}

// --- serialization -----------------------------------------------------------

TEST(FuzzCorpus, SerializeParseRoundTrip) {
  const Rv32Generator gen(isa::rv32_subset_named("rv32imc"));
  const AbsProgram p = gen.generate(99);
  const std::string text = serialize_program(p, "rv32");
  EXPECT_EQ(parse_program(text, "rv32"), p);
  EXPECT_THROW(parse_program(text, "thumb"), PdatError);
  EXPECT_THROW(parse_program("op 1 2", "rv32"), PdatError);
}

// --- shrinker ----------------------------------------------------------------

TEST(FuzzShrink, DeltaDebugsToMinimalCore) {
  // 40 ops; the "failure" needs the two marked ops (opseed 42 twice).
  AbsProgram p;
  for (int i = 0; i < 40; ++i) p.push_back({i % 5, OpClass::Plain, 7, 1});
  p[11].opseed = 42;
  p[29].opseed = 42;
  auto fails = [](const AbsProgram& cand) {
    int marked = 0;
    for (const AbsOp& op : cand) marked += op.opseed == 42 ? 1 : 0;
    return marked >= 2;
  };
  const ShrinkResult r = shrink_program(p, fails, 400);
  EXPECT_EQ(r.program.size(), 2u);
  EXPECT_TRUE(fails(r.program));
  EXPECT_LE(r.oracle_runs, 400u);
}

TEST(FuzzShrink, CanonicalizesOperandsWhenFailurePersists) {
  AbsProgram p;
  p.push_back({0, OpClass::Plain, 123, 5});
  p.push_back({1, OpClass::Plain, 456, 3});
  auto fails = [](const AbsProgram& cand) { return cand.size() >= 2; };
  const ShrinkResult r = shrink_program(p, fails, 100);
  ASSERT_EQ(r.program.size(), 2u);
  for (const AbsOp& op : r.program) {
    EXPECT_EQ(op.opseed, 0u);
    EXPECT_EQ(op.skip, 1);
  }
}

TEST(FuzzShrink, RespectsBudget) {
  AbsProgram p;
  for (int i = 0; i < 64; ++i) p.push_back({0, OpClass::Plain, 1, 1});
  std::size_t calls = 0;
  auto fails = [&](const AbsProgram&) {
    ++calls;
    return false;  // nothing shrinkable: ddmin probes until the budget dies
  };
  const ShrinkResult r = shrink_program(p, fails, 10);
  EXPECT_EQ(r.oracle_runs, 10u);
  EXPECT_EQ(calls, 10u);
  EXPECT_EQ(r.program.size(), 64u);
}

// --- oracles -----------------------------------------------------------------

TEST(FuzzOracle, HealthyIbexAgreesWithIss) {
  const Rv32Generator gen(isa::rv32_subset_named("rv32imc"));
  Rv32DiffOracle oracle(gen, ibex_netlist(), nullptr);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const AbsProgram p = gen.generate(seed);
    const RunOutcome out = oracle.run(p, nullptr);
    EXPECT_EQ(out.status, RunOutcome::Status::Agree) << "seed " << seed << ": " << out.detail;
  }
}

TEST(FuzzOracle, HealthyCm0AgreesWithIss) {
  const ThumbGenerator gen(isa::thumb_subset_interesting());
  ThumbDiffOracle oracle(gen, cm0_netlist(), nullptr);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const AbsProgram p = gen.generate(seed);
    const RunOutcome out = oracle.run(p, nullptr);
    EXPECT_EQ(out.status, RunOutcome::Status::Agree) << "seed " << seed << ": " << out.detail;
  }
}

TEST(FuzzOracle, CoverageAccumulates) {
  const Rv32Generator gen(isa::rv32_subset_named("rv32i"));
  Rv32DiffOracle oracle(gen, ibex_netlist(), nullptr);
  CoverageMap cov;
  cov.init(oracle.coverage_nets());
  EXPECT_EQ(cov.covered(), 0u);
  oracle.run(gen.generate(1), &cov);
  const std::size_t after_one = cov.covered();
  EXPECT_GT(after_one, 0u);
  EXPECT_LE(after_one, 2 * cov.nets());
}

// --- the loop: mutation self-check + determinism -----------------------------

namespace {

FuzzStats fuzz_ibex_baseline(std::uint64_t seed, std::size_t iterations, int threads,
                             const std::string& out_dir) {
  FuzzOptions fopt;
  fopt.seed = seed;
  fopt.iterations = iterations;
  fopt.threads = threads;
  fopt.out_dir = out_dir;
  fopt.max_divergences = 2;
  return fuzz_rv32(isa::rv32_subset_named("rv32i"), ibex_netlist(), nullptr, fopt);
}

}  // namespace

TEST(FuzzLoop, MutationSelfCheckFindsAndShrinksInjectedDecoderFault) {
  // Arm the decoder-fault chaos hook: fetched R-type words get a corrupted
  // rs2 index in the testbench but not in the ISS. The fuzzer must notice
  // within a bounded budget and shrink the divergence to <= 8 instructions.
  util::ScopedFailpoint fp("ibex_tb.fetch_fault", "enospc");
  const FuzzStats stats = fuzz_ibex_baseline(1, 48, 1, "");
  ASSERT_GE(stats.divergences, 1u) << "armed decoder fault not detected in 48 programs";
  ASSERT_FALSE(stats.findings.empty());
  for (const FuzzFinding& f : stats.findings) {
    EXPECT_LE(f.shrunk.size(), 8u) << "shrunk reproducer too large: " << f.detail;
    EXPECT_FALSE(f.detail.empty());
  }
  // Deterministic: the same seed finds and shrinks to the same reproducer.
  const FuzzStats again = fuzz_ibex_baseline(1, 48, 1, "");
  ASSERT_EQ(again.findings.size(), stats.findings.size());
  for (std::size_t i = 0; i < stats.findings.size(); ++i) {
    EXPECT_EQ(again.findings[i].shrunk, stats.findings[i].shrunk);
    EXPECT_EQ(again.findings[i].detail, stats.findings[i].detail);
  }
}

TEST(FuzzLoop, ArtifactsAreByteIdenticalAcrossThreadCounts) {
  util::ScopedFailpoint fp("ibex_tb.fetch_fault", "enospc");  // exercise repro paths too
  const auto dir1 = fresh_dir("t1");
  const auto dir4 = fresh_dir("t4");
  const FuzzStats s1 = fuzz_ibex_baseline(3, 48, 1, dir1.string());
  const FuzzStats s4 = fuzz_ibex_baseline(3, 48, 4, dir4.string());

  EXPECT_EQ(s1.programs, s4.programs);
  EXPECT_EQ(s1.divergences, s4.divergences);
  EXPECT_EQ(s1.inconclusive, s4.inconclusive);
  EXPECT_EQ(s1.corpus_retained, s4.corpus_retained);
  EXPECT_EQ(s1.covered_pairs, s4.covered_pairs);
  EXPECT_EQ(s1.shrink_runs, s4.shrink_runs);
  ASSERT_EQ(s1.findings.size(), s4.findings.size());
  for (std::size_t i = 0; i < s1.findings.size(); ++i) {
    EXPECT_EQ(s1.findings[i].shrunk, s4.findings[i].shrunk);
  }

  const auto c1 = dir_contents(dir1);
  const auto c4 = dir_contents(dir4);
  ASSERT_FALSE(c1.empty());
  EXPECT_EQ(c1, c4) << "corpus/coverage/reproducers must not depend on the thread count";
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir4);
}

TEST(FuzzLoop, ZeroIterationsRunsNoOraclesAndWritesNothing) {
  const auto dir = fresh_dir("zero");
  FuzzOptions fopt;
  fopt.iterations = 0;
  fopt.out_dir = dir.string();
  Target target;  // no generator, no oracle factory: must not be touched
  const FuzzStats stats = run_fuzz(target, fopt);
  EXPECT_EQ(stats.programs, 0u);
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(FuzzLoop, RetainedCorpusCoversNewTogglesOnly) {
  const auto dir = fresh_dir("corpus");
  const FuzzStats stats = fuzz_ibex_baseline(5, 32, 2, dir.string());
  EXPECT_GT(stats.corpus_retained, 0u);
  EXPECT_LT(stats.corpus_retained, stats.programs) << "coverage gate retained everything";
  // The corpus on disk matches the stats, and the coverage report's summary
  // lines agree with the returned numbers.
  std::size_t hex_files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir / "corpus")) {
    hex_files += e.path().extension() == ".hex" ? 1 : 0;
  }
  EXPECT_EQ(hex_files, stats.corpus_retained);
  std::ifstream cov(dir / "coverage.txt");
  std::stringstream ss;
  ss << cov.rdbuf();
  EXPECT_NE(ss.str().find("covered_pairs " + std::to_string(stats.covered_pairs)),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(FuzzLoop, ShrunkReproducerReplaysAsDivergent) {
  util::ScopedFailpoint fp("ibex_tb.fetch_fault", "enospc");
  const auto dir = fresh_dir("replay");
  const FuzzStats stats = fuzz_ibex_baseline(1, 48, 1, dir.string());
  ASSERT_FALSE(stats.findings.empty());

  std::ifstream in(dir / "repro_00.prog");
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const AbsProgram replayed = parse_program(ss.str(), "rv32");
  EXPECT_EQ(replayed, stats.findings[0].shrunk);

  const Rv32Generator gen(isa::rv32_subset_named("rv32i"));
  Rv32DiffOracle oracle(gen, ibex_netlist(), nullptr);
  EXPECT_EQ(oracle.run(replayed, nullptr).status, RunOutcome::Status::Diverge);
  // ... and with the failpoint disarmed the same program agrees again.
  util::failpoint_clear("ibex_tb.fetch_fault");
  EXPECT_EQ(oracle.run(replayed, nullptr).status, RunOutcome::Status::Agree);
  util::failpoint_set("ibex_tb.fetch_fault", "enospc");  // ScopedFailpoint dtor clears
  std::filesystem::remove_all(dir);
}

TEST(FuzzLoop, Cm0MutationSelfCheck) {
  util::ScopedFailpoint fp("cm0_tb.fetch_fault", "enospc");
  FuzzOptions fopt;
  fopt.seed = 1;
  fopt.iterations = 48;
  fopt.max_divergences = 1;
  const FuzzStats stats =
      fuzz_thumb(isa::thumb_subset_interesting(), cm0_netlist(), nullptr, fopt);
  ASSERT_GE(stats.divergences, 1u) << "armed CM0 decoder fault not detected";
  ASSERT_FALSE(stats.findings.empty());
  EXPECT_LE(stats.findings[0].shrunk.size(), 8u);
}
