#include <gtest/gtest.h>

#include "cores/ibex/ibex_core.h"
#include "cores/ibex/ibex_tb.h"
#include "cores/ibex/rvc_expander.h"
#include "isa/rv32_assembler.h"
#include "isa/rv32_isa.h"
#include "netlist/check.h"
#include "sim/bitsim.h"

namespace pdat::cores {
namespace {

const Netlist& full_core() {
  static const IbexCore core = build_ibex();
  return core.netlist;
}

TEST(RvcExpander, HardwareMatchesSoftwareOnSamples) {
  Netlist nl;
  synth::Builder b(nl);
  auto lo = b.input("lo", 16);
  const RvcExpanderOut out = build_rvc_expander(b, lo);
  b.output("word", out.word32);
  b.output("illegal", {out.illegal});
  BitSim sim(nl);
  Rng rng(123);
  for (const auto& spec : isa::rv32_instructions()) {
    if (!spec.compressed) continue;
    for (int k = 0; k < 60; ++k) {
      const std::uint32_t w = isa::rv32_sample(spec, rng) & 0xffff;
      sim.set_port_uniform(*nl.find_input("lo"), w);
      sim.eval();
      EXPECT_EQ(sim.read_port(*nl.find_output("illegal"), 0), 0u) << spec.name;
      EXPECT_EQ(sim.read_port(*nl.find_output("word"), 0),
                isa::rvc_expand(static_cast<std::uint16_t>(w)))
          << spec.name << " encoding 0x" << std::hex << w;
    }
  }
  // Illegal compressed encodings flag as illegal.
  for (std::uint32_t w : {0x0000u}) {
    sim.set_port_uniform(*nl.find_input("lo"), w);
    sim.eval();
    EXPECT_EQ(sim.read_port(*nl.find_output("illegal"), 0), 1u);
  }
}

TEST(RvcExpander, RandomHalvesAgreeWithSoftware) {
  Netlist nl;
  synth::Builder b(nl);
  auto lo = b.input("lo", 16);
  const RvcExpanderOut out = build_rvc_expander(b, lo);
  b.output("word", out.word32);
  b.output("illegal", {out.illegal});
  BitSim sim(nl);
  Rng rng(321);
  for (int k = 0; k < 3000; ++k) {
    std::uint32_t w = static_cast<std::uint32_t>(rng.next()) & 0xffff;
    if ((w & 3) == 3) w &= ~2u;  // force a compressed quadrant
    sim.set_port_uniform(*nl.find_input("lo"), w);
    sim.eval();
    const std::uint32_t sw = isa::rvc_expand(static_cast<std::uint16_t>(w));
    const bool hw_illegal = sim.read_port(*nl.find_output("illegal"), 0) != 0;
    EXPECT_EQ(hw_illegal, sw == 0) << std::hex << w;
    if (sw != 0 && !hw_illegal) {
      EXPECT_EQ(sim.read_port(*nl.find_output("word"), 0), sw) << std::hex << w;
    }
  }
}

TEST(IbexCore, BuildsWellFormed) {
  const Netlist& nl = full_core();
  EXPECT_TRUE(check_netlist(nl).empty());
  // Sanity: embedded-class core scale (paper Table II: ~10k gates).
  EXPECT_GT(nl.gate_count(), 4000u);
  EXPECT_LT(nl.gate_count(), 60000u);
  EXPECT_GT(nl.num_flops(), 1100u) << "regfile + pipeline + CSR state expected";
}

TEST(IbexCore, ConfigsScaleDown) {
  const std::size_t full = build_ibex().netlist.gate_count();
  IbexConfig no_m;
  no_m.has_m = false;
  IbexConfig no_c;
  no_c.has_c = false;
  IbexConfig no_z;
  no_z.has_z = false;
  EXPECT_LT(build_ibex(no_m).netlist.gate_count(), full);
  EXPECT_LT(build_ibex(no_c).netlist.gate_count(), full);
  EXPECT_LT(build_ibex(no_z).netlist.gate_count(), full);
}

std::string cosim_asm(const std::string& text) {
  return cosim_against_iss(full_core(), isa::assemble_rv32(text).words);
}

TEST(IbexCosim, ArithmeticLoop) {
  EXPECT_EQ(cosim_asm(R"(
      li a0, 0
      li t0, 1
    loop:
      add a0, a0, t0
      slli t1, t0, 2
      xor a0, a0, t1
      addi t0, t0, 1
      li t2, 20
      blt t0, t2, loop
      ebreak
  )"), "");
}

TEST(IbexCosim, MemoryMixedWidths) {
  EXPECT_EQ(cosim_asm(R"(
      li t0, 0x400
      li t1, 0x87654321
      sw t1, 0(t0)
      lb a0, 0(t0)
      lbu a1, 3(t0)
      lh a2, 0(t0)
      lhu a3, 2(t0)
      sb a1, 5(t0)
      sh a2, 6(t0)
      lw a4, 4(t0)
      ebreak
  )"), "");
}

TEST(IbexCosim, MisalignedAccessesCrossWordBoundaries) {
  // lh/lw/sh/sw at offsets 1..3 exercise the two-phase LSU sequencer.
  EXPECT_EQ(cosim_asm(R"(
      li t0, 0x500
      li t1, 0xA1B2C3D4
      sw t1, 1(t0)        # w @ off 1 (crosses)
      lw a0, 1(t0)
      sw t1, 2(t0)        # w @ off 2 (crosses)
      lw a1, 2(t0)
      sw t1, 3(t0)        # w @ off 3 (crosses)
      lw a2, 3(t0)
      sh t1, 7(t0)        # h @ off 3 (crosses)
      lh a3, 7(t0)
      lhu a4, 7(t0)
      lw a5, 4(t0)        # aligned readback of the mixed bytes
      lw a6, 8(t0)
      ebreak
  )"), "");
}

TEST(IbexCosim, MisalignedRawPairsInterlockWithTwoPhaseLsu) {
  // Directed lockstep anchor for the fuzzer's MisMem/RAW bias (src/fuzz/):
  // every split access's result is consumed by the very next instruction,
  // so the two-phase LSU sequencer must interlock with RAW forwarding —
  // through the register file, through memory, and through the address path.
  EXPECT_EQ(cosim_asm(R"(
      li t0, 0x604
      li t1, 0xDEADBEEF
      sw t1, 3(t0)        # split store...
      lw a0, 3(t0)        #   ...reloaded split (RAW through memory)
      addi a1, a0, 1      # load-use RAW straight after phase 2
      lhu a2, 3(t0)       # split halfword load
      add a3, a2, a2      # its result feeds the ALU...
      sh a3, 1(t0)        #   ...and then a split store's data
      li t2, 0x700
      li t3, 0x705
      sw t3, 2(t2)        # store a pointer, misaligned
      lw t4, 2(t2)        # reload it
      sb t4, 0(t4)        # and use it as the base address immediately
      lbu a4, 5(t2)
      lw a5, 0(t0)        # aligned readback of the mixed bytes
      lw a6, 4(t0)
      ebreak
  )"), "");
}

TEST(IbexCosim, BranchesAndJumps) {
  EXPECT_EQ(cosim_asm(R"(
      li a0, 0
      li t0, -5
      li t1, 5
      beq t0, t1, bad
      bne t0, t1, l1
    bad:
      li a0, 999
      ebreak
    l1:
      blt t0, t1, l2
      j bad
    l2:
      bltu t0, t1, bad    # unsigned -5 > 5
      bge t1, t0, l3
      j bad
    l3:
      call fn
      addi a0, a0, 1
      ebreak
    fn:
      addi a0, a0, 10
      ret
  )"), "");
}

TEST(IbexCosim, MulDivAllVariants) {
  EXPECT_EQ(cosim_asm(R"(
      li t0, -7
      li t1, 3
      mul a0, t0, t1
      mulh a1, t0, t1
      mulhu a2, t0, t1
      mulhsu a3, t0, t1
      div a4, t0, t1
      divu a5, t0, t1
      rem a6, t0, t1
      remu a7, t0, t1
      li t0, 0x80000000
      li t1, -1
      div s0, t0, t1
      rem s1, t0, t1
      li t1, 0
      div s2, t0, t1
      divu s3, t0, t1
      rem s4, t0, t1
      remu s5, t0, t1
      ebreak
  )"), "");
}

TEST(IbexCosim, ShiftsAndCompares) {
  EXPECT_EQ(cosim_asm(R"(
      li t0, 0x80000001
      srai a0, t0, 7
      srli a1, t0, 7
      slli a2, t0, 3
      li t1, 35
      sll a3, t0, t1
      sra a4, t0, t1
      slt a5, t0, x0
      sltu a6, t0, x0
      slti a7, t0, -1
      sltiu s0, t0, -1
      ebreak
  )"), "");
}

TEST(IbexCosim, CsrCounters) {
  EXPECT_EQ(cosim_asm(R"(
      nop
      nop
      csrrs a0, 0xc02, x0    # instret
      csrrw a1, 0x340, a0    # mscratch swap
      csrrs a2, 0x340, x0
      csrrwi a3, 0x340, 5
      csrrsi a4, 0x340, 2
      csrrci a5, 0x340, 1
      csrrs a6, 0x340, x0
      ebreak
  )"), "");
}

TEST(IbexCosim, LuiAuipcFence) {
  EXPECT_EQ(cosim_asm(R"(
      lui a0, 0x12345
      auipc a1, 0x1000
      fence
      fence.i
      addi a1, a1, 0x21
      ebreak
  )"), "");
}

TEST(IbexCosim, CompressedInstructionsExecute) {
  // Build a mixed 16/32-bit stream by hand:
  //   c.li a0, 9 ; c.addi a0, 7 ; c.slli a0, 2 ; c.nop-pad ; ebreak
  using namespace isa;
  RvFields f;
  f.rd = 10;
  f.imm = 9;
  const auto c_li = static_cast<std::uint16_t>(rv32_encode(rv32_instr("c.li"), f));
  f.imm = 7;
  const auto c_addi = static_cast<std::uint16_t>(rv32_encode(rv32_instr("c.addi"), f));
  RvFields s;
  s.rd = 10;
  s.shamt = 2;
  const auto c_slli = static_cast<std::uint16_t>(rv32_encode(rv32_instr("c.slli"), s));
  RvFields nopf;
  nopf.rd = 0;
  nopf.imm = 0;
  const auto c_nop = static_cast<std::uint16_t>(rv32_encode(rv32_instr("c.addi"), nopf));
  std::vector<std::uint32_t> words = {
      static_cast<std::uint32_t>(c_li) | (static_cast<std::uint32_t>(c_addi) << 16),
      static_cast<std::uint32_t>(c_slli) | (static_cast<std::uint32_t>(c_nop) << 16),
      rv32_instr("ebreak").match};
  EXPECT_EQ(cosim_against_iss(full_core(), words), "");
}

TEST(IbexCosim, IllegalInstructionHaltsCore) {
  IbexTestbench tb(full_core());
  tb.load_words(0, {0xffffffffu});
  tb.reset();
  const auto cycles = tb.run(100);
  EXPECT_LT(cycles, 100u);
}

TEST(IbexCosim, NoCConfigTreatsCompressedAsIllegal) {
  IbexConfig cfg;
  cfg.has_c = false;
  const IbexCore core = build_ibex(cfg);
  IbexTestbench tb(core.netlist);
  tb.load_words(0, {0x00000001u});  // c.nop — illegal without the C extension
  tb.reset();
  EXPECT_LT(tb.run(100), 100u);
  EXPECT_EQ(tb.retired(), 1u) << "the illegal instruction itself retires into a halt";
}

class IbexRandomPrograms : public ::testing::TestWithParam<int> {};

// Random straight-line programs over the full ISA surface (no branches, so
// any operand values are safe), ending in ebreak.
TEST_P(IbexRandomPrograms, TraceMatchesIss) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::vector<std::uint32_t> words;
  const char* ops[] = {"add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
                       "addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai",
                       "lui", "auipc", "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem",
                       "remu"};
  for (int i = 0; i < 60; ++i) {
    const auto& spec = isa::rv32_instr(ops[rng.below(std::size(ops))]);
    isa::RvFields f;
    f.rd = static_cast<unsigned>(rng.below(32));
    f.rs1 = static_cast<unsigned>(rng.below(32));
    f.rs2 = static_cast<unsigned>(rng.below(32));
    f.imm = static_cast<std::int32_t>(rng.next() & 0xfff) - 2048;
    if (spec.fmt == isa::RvFormat::U) f.imm = static_cast<std::int32_t>(rng.next() & 0xfffff000);
    f.shamt = static_cast<unsigned>(rng.below(32));
    words.push_back(isa::rv32_encode(spec, f));
  }
  words.push_back(isa::rv32_instr("ebreak").match);
  EXPECT_EQ(cosim_against_iss(full_core(), words), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, IbexRandomPrograms, ::testing::Range(1, 13));

}  // namespace
}  // namespace pdat::cores
