// Cross-module integration tests: the "firm IP" delivery path (structural
// Verilog round-trips of whole cores), PDAT on netlists loaded from Verilog,
// and determinism of the whole pipeline.
#include <gtest/gtest.h>

#include <sstream>

#include "cores/cm0/cm0_core.h"
#include "cores/cm0/cm0_tb.h"
#include "cores/ibex/ibex_core.h"
#include "cores/ibex/ibex_tb.h"
#include "isa/rv32_assembler.h"
#include "isa/thumb_assembler.h"
#include "netlist/check.h"
#include "netlist/verilog.h"
#include "opt/optimizer.h"
#include "pdat/pipeline.h"
#include "workload/mibench.h"

namespace pdat {
namespace {

TEST(FirmIp, IbexSurvivesVerilogRoundTrip) {
  cores::IbexCore core = cores::build_ibex();
  opt::optimize(core.netlist);
  const std::string text = to_verilog(core.netlist, "ibex");
  Netlist back = read_verilog_string(text);
  EXPECT_TRUE(check_netlist(back).empty());
  EXPECT_EQ(back.gate_count(), core.netlist.gate_count());
  EXPECT_EQ(back.num_flops(), core.netlist.num_flops());
  // The re-imported netlist must still execute programs correctly.
  const auto prog = isa::assemble_rv32(R"(
      li a0, 3
      li a1, 4
      mul a2, a0, a1
      sw a2, 0x80(x0)
      lw a3, 0x80(x0)
      ebreak
  )");
  EXPECT_EQ(cores::cosim_against_iss(back, prog.words), "");
}

TEST(FirmIp, Cm0SurvivesVerilogRoundTrip) {
  cores::Cm0Core core = cores::build_cm0();
  opt::optimize(core.netlist);
  Netlist back = read_verilog_string(to_verilog(core.netlist, "cm0"));
  EXPECT_TRUE(check_netlist(back).empty());
  const auto prog = isa::assemble_thumb(R"(
      movs r0, #9
      movs r1, #5
      muls r0, r1
      bkpt #0
  )");
  EXPECT_EQ(cores::cm0_cosim_against_iss(back, prog.halves), "");
}

TEST(FirmIp, PdatRunsOnReimportedNetlist) {
  // The full firm-IP flow: export Verilog, re-import, run PDAT with a
  // port-based restriction, verify the reduced core.
  cores::IbexCore core = cores::build_ibex();
  opt::optimize(core.netlist);
  core.refresh_handles();
  Netlist firm = read_verilog_string(to_verilog(core.netlist, "ip"));
  // Port-based environment on the fetch port (no netlist knowledge needed).
  const auto subset = isa::rv32_subset_named("rv32i");
  const PdatResult res = run_pdat(firm, [&](Netlist& a) {
    return restrict_isa_port(a, "imem_rdata", subset);
  });
  EXPECT_LT(res.gates_after, res.gates_before);
  const auto prog = isa::assemble_rv32(R"(
      li a0, 1
      li a1, 2
      add a2, a0, a1
      ebreak
  )");
  EXPECT_EQ(cores::cosim_against_iss(res.transformed, prog.words), "");
}

TEST(Determinism, PdatIsBitExactAcrossRuns) {
  cores::IbexCore core = cores::build_ibex();
  opt::optimize(core.netlist);
  core.refresh_handles();
  const auto subset = isa::rv32_subset_named("rv32im");
  auto instr_q = core.instr_reg_q;
  auto run_once = [&]() {
    return run_pdat(core.netlist,
                    [&](Netlist& a) { return restrict_isa_cutpoint(a, instr_q, subset); });
  };
  const PdatResult a = run_once();
  const PdatResult b = run_once();
  EXPECT_EQ(a.gates_after, b.gates_after);
  EXPECT_EQ(a.proven, b.proven);
  EXPECT_EQ(a.area_after, b.area_after);
  EXPECT_EQ(to_verilog(a.transformed, "m"), to_verilog(b.transformed, "m"));
}

TEST(Workloads, AllKernelsRunOnGateLevelIbex) {
  cores::IbexCore core = cores::build_ibex();
  opt::optimize(core.netlist);
  for (const auto& k : workload::mibench_kernels()) {
    const auto prog = isa::assemble_rv32(k.source);
    EXPECT_EQ(cores::cosim_against_iss(core.netlist, prog.words, 2000000), "") << k.name;
  }
}

TEST(Environment, ConstantDriverTiesNets) {
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 2);
  b.output("o", a);
  Environment env;
  env.drivers.push_back(
      std::make_shared<ConstantDriver>(std::vector<NetId>{a[0]}, true));
  env.drivers.push_back(
      std::make_shared<ConstantDriver>(std::vector<NetId>{a[1]}, false));
  BitSim sim(nl);
  Rng rng(1);
  drive_inputs(nl, env, sim, rng);
  sim.eval();
  EXPECT_EQ(sim.value(a[0]), ~0ULL);
  EXPECT_EQ(sim.value(a[1]), 0ULL);
}

TEST(Netlist, FindNetResolvesNamesAfterCompact) {
  Netlist nl;
  synth::Builder b(nl);
  auto in = b.input("x", 4);
  const NetId y = b.parity(in);
  nl.name_net(y, "parity_out");
  // Add some garbage that compact() will renumber around.
  for (int i = 0; i < 10; ++i) b.and_(in[0], in[1]);
  b.output("o", {y});
  opt::optimize(nl);
  const NetId found = nl.find_net("parity_out");
  // The named net may have been merged into an equivalent net by the
  // optimizer; if it survives it must drive the output.
  if (found != kNoNet) {
    EXPECT_EQ(found, nl.outputs()[0].bits[0]);
  }
  EXPECT_EQ(nl.find_net("no_such_name"), kNoNet);
}

}  // namespace
}  // namespace pdat
