#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/types.h"
#include "isa/rv32_assembler.h"
#include "isa/rv32_isa.h"
#include "isa/rv32_subsets.h"
#include "sim/bitsim.h"
#include "synth/builder.h"

namespace pdat::isa {
namespace {

TEST(Rv32Table, InstructionCountsMatchPaperTable1) {
  int i = 0, m = 0, c = 0, z = 0;
  for (const auto& spec : rv32_instructions()) {
    switch (spec.ext) {
      case RvExt::I: ++i; break;
      case RvExt::M: ++m; break;
      case RvExt::C: ++c; break;
      case RvExt::Zicsr:
      case RvExt::Zifencei: ++z; break;
    }
  }
  EXPECT_EQ(i, 40) << "paper Table I: RV32i base = 40";
  EXPECT_EQ(m, 8) << "paper Table I: M-extension = 8";
  EXPECT_EQ(z, 7) << "paper Table I: Zicsr(+Zifencei) = 7";
  EXPECT_GE(c, 23) << "paper Table I counts 23 C instructions";
  EXPECT_LE(c, 27);
}

TEST(Rv32Encode, ExtractRoundTripsEncode) {
  Rng rng(33);
  for (const auto& spec : rv32_instructions()) {
    for (int k = 0; k < 50; ++k) {
      const std::uint32_t w = rv32_sample(spec, rng);
      const RvInstrSpec* dec = rv32_decode_spec(w);
      ASSERT_NE(dec, nullptr) << spec.name << " sampled " << std::hex << w;
      EXPECT_EQ(dec->name, spec.name) << std::hex << w;
      const RvFields f = rv32_extract(spec, w);
      const std::uint32_t re = rv32_encode(spec, f);
      // Re-encoding must reproduce all fixed+operand bits (fence pred/succ
      // and reserved don't round trip; skip the free-bits formats).
      if (spec.fmt != RvFormat::Fence) {
        const std::uint32_t cmp_mask = spec.compressed ? 0xffff : 0xffffffff;
        EXPECT_EQ(re & cmp_mask, w & cmp_mask) << spec.name << " " << std::hex << w;
      }
    }
  }
}

TEST(Rv32Sample, Rv32eKeepsRegisterFieldsLow) {
  Rng rng(44);
  const RvSubset s = rv32_subset_named("rv32e");
  for (int k = 0; k < 500; ++k) {
    const std::uint32_t w = sample_subset_word(s, rng);
    const RvInstrSpec* spec = rv32_decode_spec(w);
    ASSERT_NE(spec, nullptr);
    const RvFields f = rv32_extract(*spec, w);
    EXPECT_LT(f.rd, 16u);
    EXPECT_LT(f.rs1, 16u);
    EXPECT_LT(f.rs2, 16u);
  }
}

TEST(Rv32Decode, IllegalEncodings) {
  EXPECT_EQ(rv32_decode_spec(0x00000000), nullptr);  // all-zero (c.addi4spn nzuimm=0)
  EXPECT_EQ(rv32_decode_spec(0xffffffff), nullptr);
  EXPECT_EQ(rv32_decode_spec(0x0000307f), nullptr);  // bad funct3 for load
}

TEST(RvcExpand, SpotChecks) {
  // c.li a0, 5  ->  addi a0, x0, 5
  RvFields f;
  f.rd = 10;
  f.imm = 5;
  const std::uint32_t cli = rv32_encode(rv32_instr("c.li"), f);
  const std::uint32_t expanded = rvc_expand(static_cast<std::uint16_t>(cli));
  const RvInstrSpec* spec = rv32_decode_spec(expanded);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->name, "addi");
  const RvFields g = rv32_extract(*spec, expanded);
  EXPECT_EQ(g.rd, 10u);
  EXPECT_EQ(g.rs1, 0u);
  EXPECT_EQ(g.imm, 5);
}

TEST(RvcExpand, EveryCompressedSampleExpandsToSameExtMeaning) {
  Rng rng(55);
  for (const auto& spec : rv32_instructions()) {
    if (!spec.compressed) continue;
    for (int k = 0; k < 30; ++k) {
      const std::uint32_t w = rv32_sample(spec, rng);
      const std::uint32_t e = rvc_expand(static_cast<std::uint16_t>(w));
      ASSERT_NE(e, 0u) << spec.name;
      EXPECT_NE(rv32_decode_spec(e), nullptr) << spec.name;
    }
  }
}

TEST(Subsets, NamedSubsetsHaveExpectedSizes) {
  EXPECT_EQ(rv32_subset_named("rv32i").size(), 40u);
  EXPECT_EQ(rv32_subset_named("rv32im").size(), 48u);
  EXPECT_EQ(rv32_subset_named("rv32e").size(), 40u);
  EXPECT_TRUE(rv32_subset_named("rv32e").rve);
  EXPECT_EQ(rv32_subset_all().size(), rv32_instructions().size());
  EXPECT_EQ(rv32_subset_risc16().size(), 9u);
  EXPECT_EQ(rv32_subset_safety_critical().size(), 35u);
  EXPECT_EQ(rv32_subset_reduced_addressing().size(), 30u);
  EXPECT_EQ(rv32_subset_aligned().size(), 34u);
  EXPECT_THROW(rv32_subset_named("rv64gc"), PdatError);
}

TEST(Matcher, CircuitAgreesWithSoftwareDecode) {
  Netlist nl;
  synth::Builder b(nl);
  auto instr = b.input("instr", 32);
  const RvSubset sub = rv32_subset_named("rv32i");
  const NetId ok = build_subset_matcher(b, instr, sub);
  b.output("ok", {ok});
  BitSim sim(nl);
  Rng rng(66);
  const auto& table = rv32_instructions();
  // Positive cases: every sampled member word must match.
  for (int idx : sub.instrs) {
    for (int k = 0; k < 20; ++k) {
      const std::uint32_t w = rv32_sample(table[static_cast<std::size_t>(idx)], rng);
      sim.set_port_uniform(*nl.find_input("instr"), w);
      sim.eval();
      EXPECT_EQ(sim.read_port(*nl.find_output("ok"), 0), 1u)
          << table[static_cast<std::size_t>(idx)].name << " " << std::hex << w;
    }
  }
  // Negative cases: M-extension and illegal words must not match.
  for (int k = 0; k < 20; ++k) {
    const std::uint32_t w = rv32_sample(rv32_instr("mul"), rng);
    sim.set_port_uniform(*nl.find_input("instr"), w);
    sim.eval();
    EXPECT_EQ(sim.read_port(*nl.find_output("ok"), 0), 0u);
  }
  sim.set_port_uniform(*nl.find_input("instr"), 0);
  sim.eval();
  EXPECT_EQ(sim.read_port(*nl.find_output("ok"), 0), 0u) << "all-zero word is illegal";
}

TEST(Matcher, RandomWordsAgreeWithDecode) {
  Netlist nl;
  synth::Builder b(nl);
  auto instr = b.input("instr", 32);
  const RvSubset sub = rv32_subset_all();
  b.output("ok", {build_subset_matcher(b, instr, sub)});
  BitSim sim(nl);
  Rng rng(77);
  int matched = 0;
  for (int k = 0; k < 4000; ++k) {
    const auto w = static_cast<std::uint32_t>(rng.next());
    sim.set_port_uniform(*nl.find_input("instr"), w);
    sim.eval();
    const bool hw = sim.read_port(*nl.find_output("ok"), 0) != 0;
    const bool compressed = (w & 3) != 3;
    const RvInstrSpec* spec = rv32_decode_spec(compressed ? (w & 0xffff) : w);
    bool sw = spec != nullptr;
    if (sw && spec->fmt == RvFormat::Shamt && ((w >> 25) & 1)) sw = false;
    if (sw && spec->fmt == RvFormat::CShamt && ((w >> 12) & 1)) sw = false;
    matched += hw;
    EXPECT_EQ(hw, sw) << std::hex << w << " spec=" << (spec ? spec->name : "none");
  }
  EXPECT_GT(matched, 0);
}

TEST(Assembler, BasicProgramAndLabels) {
  const auto prog = assemble_rv32(R"(
    start:
      li a0, 10
      li a1, 0
    loop:
      add a1, a1, a0
      addi a0, a0, -1
      bnez a0, loop
      ebreak
  )");
  EXPECT_EQ(prog.words.size(), 6u);
  EXPECT_EQ(prog.labels.at("start"), 0u);
  EXPECT_EQ(prog.labels.at("loop"), 8u);
  EXPECT_EQ(prog.static_profile.at("add"), 1);
  EXPECT_EQ(prog.static_profile.at("addi"), 3);  // two li + addi
  EXPECT_EQ(prog.static_profile.at("bne"), 1);
}

TEST(Assembler, LargeImmediateUsesLuiPair) {
  const auto prog = assemble_rv32("li t0, 0x12345678\nebreak\n");
  EXPECT_EQ(prog.words.size(), 3u);
  EXPECT_EQ(prog.static_profile.at("lui"), 1);
  EXPECT_EQ(prog.static_profile.at("addi"), 1);
}

TEST(Assembler, LoadsStoresAndErrors) {
  const auto prog = assemble_rv32("lw a0, 8(sp)\nsw a0, -4(s0)\nebreak\n");
  EXPECT_EQ(prog.static_profile.at("lw"), 1);
  EXPECT_EQ(prog.static_profile.at("sw"), 1);
  EXPECT_THROW(assemble_rv32("addi a0, a0, 99999\n"), PdatError);
  EXPECT_THROW(assemble_rv32("bogus a0, a1\n"), PdatError);
  EXPECT_THROW(assemble_rv32("beq a0, a1, nowhere\n"), PdatError);
}

TEST(Compressible, MatchesSpecRules) {
  auto enc = [](const char* name, unsigned rd, unsigned rs1, unsigned rs2, int imm,
                unsigned shamt = 0) {
    RvFields f;
    f.rd = rd; f.rs1 = rs1; f.rs2 = rs2; f.imm = imm; f.shamt = shamt;
    return rv32_encode(rv32_instr(name), f);
  };
  std::string cn;
  EXPECT_TRUE(rv32_compressible(enc("addi", 10, 10, 0, 4), &cn));
  EXPECT_EQ(cn, "c.addi");
  EXPECT_TRUE(rv32_compressible(enc("addi", 10, 0, 0, 4), &cn));
  EXPECT_EQ(cn, "c.li");
  EXPECT_FALSE(rv32_compressible(enc("addi", 10, 11, 0, 400), &cn));
  EXPECT_TRUE(rv32_compressible(enc("lw", 9, 8, 0, 16), &cn));
  EXPECT_EQ(cn, "c.lw");
  EXPECT_FALSE(rv32_compressible(enc("lw", 20, 21, 0, 16), &cn));
  EXPECT_TRUE(rv32_compressible(enc("add", 5, 5, 6, 0), &cn));
  EXPECT_EQ(cn, "c.add");
  EXPECT_TRUE(rv32_compressible(enc("sub", 8, 8, 9, 0), &cn));
  EXPECT_EQ(cn, "c.sub");
  EXPECT_FALSE(rv32_compressible(enc("sub", 8, 9, 8, 0), &cn));
}

// --- subset edge cases (the fuzzer's generator contract, src/fuzz/) ---------

TEST(SubsetEdge, EmptySubsetContainsNothingAndCannotBeSampled) {
  const RvSubset empty = rv32_subset_from_names("empty", {});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.contains("addi"));
  EXPECT_FALSE(empty.contains(0));
  Rng rng(7);
  EXPECT_THROW(sample_subset_word(empty, rng), PdatError);
}

TEST(SubsetEdge, FullSubsetContainsEveryTableEntry) {
  const RvSubset all = rv32_subset_all();
  const auto& table = rv32_instructions();
  EXPECT_EQ(all.size(), table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_TRUE(all.contains(static_cast<int>(i))) << table[i].name;
    EXPECT_TRUE(all.contains(table[i].name)) << table[i].name;
  }
}

TEST(SubsetEdge, CompressedOnlySubsetSamplesOnlyCompressedWords) {
  // A subset of nothing but 16-bit encodings: every sampled fetch word must
  // match one of its members on the low half (op != 11).
  std::vector<std::string> names;
  for (const auto& spec : rv32_instructions()) {
    if (spec.compressed) names.emplace_back(spec.name);
  }
  ASSERT_FALSE(names.empty());
  const RvSubset conly = rv32_subset_from_names("compressed-only", names);
  EXPECT_EQ(conly.size(), names.size());
  const auto& table = rv32_instructions();
  for (int idx : conly.instrs) {
    EXPECT_TRUE(table[static_cast<std::size_t>(idx)].compressed);
  }
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t w = sample_subset_word(conly, rng);
    EXPECT_NE(w & 3u, 3u) << "compressed words never have op==11";
    bool matched = false;
    for (int idx : conly.instrs) {
      if (table[static_cast<std::size_t>(idx)].matches(w)) matched = true;
    }
    EXPECT_TRUE(matched) << "word " << std::hex << w;
  }
}

TEST(SubsetEdge, AssembledProgramRoundTripsThroughMembership) {
  // Every word the assembler emits for in-subset mnemonics must decode back
  // to a spec the subset contains — the same closure the fuzz generator
  // promises for its concrete encodings.
  const RvSubset sub = rv32_subset_named("rv32i");
  const auto prog = assemble_rv32(
      "addi x1, x0, 5\n"
      "slli x2, x1, 3\n"
      "lw x3, 0(x2)\n"
      "beq x1, x3, 8\n"
      "sw x1, 4(x2)\n"
      "jal x0, -16\n"
      "ecall\n");
  ASSERT_FALSE(prog.words.empty());
  for (const std::uint32_t w : prog.words) {
    const RvInstrSpec* spec = rv32_decode_spec(w);
    ASSERT_NE(spec, nullptr) << std::hex << w;
    EXPECT_TRUE(sub.contains(spec->name)) << spec->name;
  }
}

TEST(SubsetEdge, WithoutRemovesExactlyTheNamedMembers) {
  const RvSubset base = rv32_subset_named("rv32i");
  const RvSubset cut = base.without({"jalr", "ecall"}).with_name("cut");
  EXPECT_EQ(cut.name, "cut");
  EXPECT_EQ(cut.size(), base.size() - 2);
  EXPECT_FALSE(cut.contains("jalr"));
  EXPECT_FALSE(cut.contains("ecall"));
  EXPECT_TRUE(cut.contains("jal"));
  EXPECT_TRUE(cut.contains("ebreak"));
}

}  // namespace
}  // namespace pdat::isa
