#include <gtest/gtest.h>

#include "isa/rv32_assembler.h"
#include "isa/rv32_isa.h"
#include "iss/rv32_iss.h"

namespace pdat::iss {
namespace {

std::uint32_t run_program(const std::string& asm_text, unsigned result_reg = 10,
                          Rv32Iss* out = nullptr) {
  const auto prog = isa::assemble_rv32(asm_text);
  Rv32Iss iss;
  iss.load_words(0, prog.words);
  iss.reset();
  iss.run(1000000);
  EXPECT_TRUE(iss.halted());
  EXPECT_FALSE(iss.illegal());
  const std::uint32_t v = iss.reg(result_reg);
  if (out != nullptr) *out = iss;
  return v;
}

TEST(Iss, SumLoop) {
  EXPECT_EQ(run_program(R"(
    li a0, 0
    li t0, 1
  loop:
    add a0, a0, t0
    addi t0, t0, 1
    li t1, 11
    blt t0, t1, loop
    ebreak
  )"), 55u);
}

TEST(Iss, X0IsHardZero) {
  EXPECT_EQ(run_program("li a0, 7\naddi x0, a0, 1\nmv a0, x0\nebreak\n"), 0u);
}

TEST(Iss, MemoryByteHalfWord) {
  EXPECT_EQ(run_program(R"(
    li t0, 0x100
    li t1, 0x12345678
    sw t1, 0(t0)
    lb a0, 1(t0)      # 0x56
    lbu a1, 3(t0)     # 0x12
    lhu a2, 2(t0)     # 0x1234
    add a0, a0, a1
    add a0, a0, a2    # 0x56 + 0x12 + 0x1234 = 0x129c
    ebreak
  )"), 0x129cu);
}

TEST(Iss, SignedLoadsSignExtend) {
  EXPECT_EQ(run_program(R"(
    li t0, 0x100
    li t1, -2
    sb t1, 0(t0)
    lb a0, 0(t0)
    ebreak
  )"), 0xfffffffeu);
}

TEST(Iss, BranchesTakenAndNot) {
  EXPECT_EQ(run_program(R"(
    li a0, 0
    li t0, -1
    li t1, 1
    blt t0, t1, l1
    addi a0, a0, 100
  l1:
    addi a0, a0, 1
    bltu t0, t1, l2   # unsigned: 0xffffffff < 1 is false
    addi a0, a0, 10
  l2:
    ebreak
  )"), 11u);
}

TEST(Iss, JalAndJalrLinkage) {
  EXPECT_EQ(run_program(R"(
    li a0, 0
    call fn
    addi a0, a0, 1
    ebreak
  fn:
    addi a0, a0, 10
    ret
  )"), 11u);
}

TEST(Iss, MultiplyDivide) {
  EXPECT_EQ(run_program("li a0, -7\nli a1, 3\nmul a0, a0, a1\nebreak\n"), 0xffffffebu);  // -21
  EXPECT_EQ(run_program("li a0, -7\nli a1, 3\ndiv a0, a0, a1\nebreak\n"), 0xfffffffeu);  // -2
  EXPECT_EQ(run_program("li a0, -7\nli a1, 3\nrem a0, a0, a1\nebreak\n"), 0xffffffffu);  // -1
  EXPECT_EQ(run_program("li a0, 7\nli a1, 0\ndivu a0, a0, a1\nebreak\n"), 0xffffffffu);
  EXPECT_EQ(run_program("li a0, 7\nli a1, 0\nrem a0, a0, a1\nebreak\n"), 7u);
}

TEST(Iss, MulhVariants) {
  EXPECT_EQ(run_program("li a0, -1\nli a1, -1\nmulh a0, a0, a1\nebreak\n"), 0u);
  EXPECT_EQ(run_program("li a0, -1\nli a1, -1\nmulhu a0, a0, a1\nebreak\n"), 0xfffffffeu);
  EXPECT_EQ(run_program("li a0, -1\nli a1, -1\nmulhsu a0, a0, a1\nebreak\n"), 0xffffffffu);
}

TEST(Iss, ShiftsMatchCpp) {
  EXPECT_EQ(run_program("li a0, 0x80000000\nsrai a0, a0, 4\nebreak\n"), 0xf8000000u);
  EXPECT_EQ(run_program("li a0, 0x80000000\nsrli a0, a0, 4\nebreak\n"), 0x08000000u);
  EXPECT_EQ(run_program("li a0, 3\nli a1, 33\nsll a0, a0, a1\nebreak\n"), 6u) << "shift mod 32";
}

TEST(Iss, CsrCycleCounter) {
  Rv32Iss iss;
  const auto prog = isa::assemble_rv32("nop\nnop\nnop\ncsrrs a0, 0xc02, x0\nebreak\n");
  iss.load_words(0, prog.words);
  iss.reset();
  iss.run(100);
  EXPECT_EQ(iss.reg(10), 3u) << "instret after three nops";
}

TEST(Iss, IllegalInstructionHalts) {
  Rv32Iss iss;
  iss.load_words(0, {0xffffffffu});
  iss.reset();
  iss.run(10);
  EXPECT_TRUE(iss.halted());
  EXPECT_TRUE(iss.illegal());
}

TEST(Iss, CompressedExecutionViaExpansion) {
  // Hand-place c.li a0, 9 ; c.addi a0, 1 ; ebreak (32-bit).
  isa::RvFields f;
  f.rd = 10;
  f.imm = 9;
  const auto cli = static_cast<std::uint16_t>(isa::rv32_encode(isa::rv32_instr("c.li"), f));
  f.imm = 1;
  const auto caddi = static_cast<std::uint16_t>(isa::rv32_encode(isa::rv32_instr("c.addi"), f));
  Rv32Iss iss;
  iss.load_words(0, {static_cast<std::uint32_t>(cli) | (static_cast<std::uint32_t>(caddi) << 16),
                     isa::rv32_instr("ebreak").match});
  iss.reset();
  iss.run(10);
  EXPECT_TRUE(iss.halted());
  EXPECT_FALSE(iss.illegal());
  EXPECT_EQ(iss.reg(10), 10u);
  EXPECT_EQ(iss.dynamic_profile().at("c.li"), 1u);
  EXPECT_EQ(iss.dynamic_profile().at("c.addi"), 1u);
}

TEST(Iss, TraceRecordsWritebacks) {
  const auto prog = isa::assemble_rv32("li a0, 3\nli t0, 0x40\nsw a0, 0(t0)\nebreak\n");
  Rv32Iss iss;
  iss.load_words(0, prog.words);
  iss.reset();
  iss.set_tracing(true);
  iss.run(100);
  ASSERT_EQ(iss.trace().size(), 3u);
  EXPECT_EQ(iss.trace()[0].rd, 10u);
  EXPECT_EQ(iss.trace()[0].rd_value, 3u);
  EXPECT_TRUE(iss.trace()[2].mem_write);
  EXPECT_EQ(iss.trace()[2].mem_addr, 0x40u);
  EXPECT_EQ(iss.trace()[2].mem_value, 3u);
}

}  // namespace
}  // namespace pdat::iss
