#include <gtest/gtest.h>

#include <sstream>

#include "netlist/check.h"
#include "netlist/levelize.h"
#include "netlist/netlist.h"
#include "netlist/verilog.h"
#include "test_util.h"

namespace pdat {
namespace {

TEST(Netlist, BasicConstruction) {
  Netlist nl;
  auto in = nl.add_input("a", 2);
  const NetId x = nl.add_cell(CellKind::And2, in[0], in[1]);
  nl.add_output("y", {x});
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_GT(nl.area(), 0.0);
  EXPECT_TRUE(check_netlist(nl).empty());
}

TEST(Netlist, TieCellsAreCached) {
  Netlist nl;
  EXPECT_EQ(nl.const0(), nl.const0());
  EXPECT_EQ(nl.const1(), nl.const1());
  EXPECT_NE(nl.const0(), nl.const1());
  EXPECT_EQ(nl.gate_count(), 0u) << "tie cells do not count as gates";
}

TEST(Netlist, TieCacheSurvivesDriverDeath) {
  // Regression: if the tie cell is swept after losing all users, const0()
  // must rebuild it instead of returning a floating net.
  Netlist nl;
  auto in = nl.add_input("a", 1);
  const NetId t0 = nl.const0();
  nl.kill_cell(nl.driver(t0));  // what a dead-sweep does to an unused tie
  const NetId t0b = nl.const0();
  ASSERT_NE(nl.driver(t0b), kNoCell);
  EXPECT_FALSE(nl.cell(nl.driver(t0b)).dead);
  const NetId t1 = nl.const1();
  nl.kill_cell(nl.driver(t1));
  EXPECT_NE(nl.driver(nl.const1()), kNoCell);
  (void)in;
}

TEST(Netlist, RedriveMovesOldDriverAside) {
  Netlist nl;
  auto in = nl.add_input("a", 2);
  const NetId x = nl.add_cell(CellKind::And2, in[0], in[1]);
  const CellId old_drv = nl.driver(x);
  nl.add_output("y", {x});
  nl.redrive_net(x, CellKind::Const0);
  EXPECT_NE(nl.driver(x), old_drv);
  EXPECT_EQ(nl.cell(nl.driver(x)).kind, CellKind::Const0);
  // Old cell still exists (rewiring never deletes), driving a dangling net.
  EXPECT_FALSE(nl.cell(old_drv).dead);
}

TEST(Netlist, DetachDriverMakesNetFree) {
  Netlist nl;
  auto in = nl.add_input("a", 1);
  const NetId x = nl.add_cell(CellKind::Inv, in[0]);
  const NetId dangling = nl.detach_driver(x);
  EXPECT_EQ(nl.driver(x), kNoCell);
  EXPECT_NE(dangling, kNoNet);
  EXPECT_NE(nl.driver(dangling), kNoCell);
}

TEST(Netlist, ReplaceUsesRewritesInputsAndPorts) {
  Netlist nl;
  auto in = nl.add_input("a", 2);
  const NetId x = nl.add_cell(CellKind::And2, in[0], in[1]);
  const NetId y = nl.add_cell(CellKind::Inv, x);
  nl.add_output("o", {x, y});
  nl.replace_uses(x, in[0]);
  EXPECT_EQ(nl.cell(nl.driver(y)).in[0], in[0]);
  EXPECT_EQ(nl.outputs()[0].bits[0], in[0]);
}

TEST(Netlist, CompactDropsDeadCellsAndNets) {
  Netlist nl;
  auto in = nl.add_input("a", 2);
  const NetId x = nl.add_cell(CellKind::And2, in[0], in[1]);
  const NetId y = nl.add_cell(CellKind::Or2, in[0], in[1]);
  nl.add_output("o", {x});
  nl.kill_cell(nl.driver(y));
  const std::size_t nets_before = nl.num_nets();
  nl.compact();
  EXPECT_LT(nl.num_nets(), nets_before);
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_TRUE(check_netlist(nl).empty());
}

TEST(Netlist, CheckFlagsFloatingInput) {
  Netlist nl;
  const NetId floating = nl.new_net();
  const NetId x = nl.add_cell(CellKind::Inv, floating);
  nl.add_output("o", {x});
  EXPECT_FALSE(check_netlist(nl).empty());
}

TEST(Netlist, DoubleDriveThrows) {
  Netlist nl;
  auto in = nl.add_input("a", 1);
  const NetId x = nl.add_cell(CellKind::Inv, in[0]);
  EXPECT_THROW(nl.add_cell_driving(x, CellKind::Buf, in[0]), PdatError);
}

TEST(Levelize, OrdersGatesTopologically) {
  Netlist nl;
  auto in = nl.add_input("a", 2);
  const NetId x = nl.add_cell(CellKind::And2, in[0], in[1]);
  const NetId y = nl.add_cell(CellKind::Inv, x);
  const NetId z = nl.add_cell(CellKind::Or2, y, in[0]);
  nl.add_output("o", {z});
  const Levelization lv = levelize(nl);
  EXPECT_EQ(lv.net_level[x], 1);
  EXPECT_EQ(lv.net_level[y], 2);
  EXPECT_EQ(lv.net_level[z], 3);
  EXPECT_EQ(lv.max_level, 3);
}

TEST(Levelize, DetectsCombinationalCycle) {
  Netlist nl;
  auto in = nl.add_input("a", 1);
  // Build a cycle by hand: x = AND(a, y), y = INV(x).
  const NetId x = nl.new_net();
  const NetId y = nl.add_cell(CellKind::Inv, x);
  nl.add_cell_driving(x, CellKind::And2, in[0], y);
  nl.add_output("o", {y});
  EXPECT_THROW(levelize(nl), PdatError);
}

TEST(Levelize, FlopsBreakCycles) {
  Netlist nl;
  // Toggle flop: q <= INV(q).
  const NetId q = nl.add_cell(CellKind::Dff, nl.const0());
  const NetId d = nl.add_cell(CellKind::Inv, q);
  nl.cell(nl.driver(q)).in[0] = d;
  nl.add_output("o", {q});
  EXPECT_NO_THROW(levelize(nl));
}

TEST(Verilog, RoundTripPreservesFunction) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Netlist nl = test::random_netlist(seed);
    const std::string text = to_verilog(nl, "dut");
    Netlist back = read_verilog_string(text);
    EXPECT_TRUE(check_netlist(back).empty());
    EXPECT_EQ(back.gate_count(), nl.gate_count());
    EXPECT_TRUE(test::cosim_equal(nl, back, seed * 17, 64));
  }
}

TEST(Verilog, PreservesFlopInitValues) {
  Netlist nl;
  const NetId q1 = nl.add_cell(CellKind::Dff, nl.const1());
  nl.cell(nl.driver(q1)).init = Tri::T;
  const NetId q2 = nl.add_cell(CellKind::Dff, nl.const0());
  nl.cell(nl.driver(q2)).init = Tri::X;
  nl.add_output("o", {q1, q2});
  Netlist back = read_verilog_string(to_verilog(nl, "dut"));
  int t = 0, x = 0;
  for (CellId id : back.live_cells()) {
    if (back.cell(id).kind != CellKind::Dff) continue;
    t += back.cell(id).init == Tri::T;
    x += back.cell(id).init == Tri::X;
  }
  EXPECT_EQ(t, 1);
  EXPECT_EQ(x, 1);
}

TEST(Verilog, RejectsGarbage) {
  EXPECT_THROW(read_verilog_string("module m (; endmodule"), PdatError);
  EXPECT_THROW(read_verilog_string("module m (a); input a; FOO_X9 U0 (.A(n0)); endmodule"),
               PdatError);
}

}  // namespace
}  // namespace pdat
