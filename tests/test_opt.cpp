#include <gtest/gtest.h>

#include "netlist/check.h"
#include "opt/const_prop.h"
#include "opt/dead_cells.h"
#include "opt/obfuscate.h"
#include "opt/optimizer.h"
#include "opt/rewrite.h"
#include "opt/strash.h"
#include "test_util.h"

namespace pdat {
namespace {

TEST(ConstProp, FoldsConstantCone) {
  Netlist nl;
  auto a = nl.add_input("a", 1);
  const NetId x = nl.add_cell(CellKind::And2, a[0], nl.const0());  // = 0
  const NetId y = nl.add_cell(CellKind::Or2, x, a[0]);             // = a
  nl.add_output("o", {y});
  opt::optimize(nl);
  EXPECT_EQ(nl.gate_count(), 0u);
  EXPECT_EQ(nl.outputs()[0].bits[0], nl.find_input("a")->bits[0]);
}

TEST(ConstProp, SequentialConstantFlopRemoved) {
  Netlist nl;
  // Flop with D tied to its own init value is a sequential constant.
  const NetId q = nl.add_cell(CellKind::Dff, nl.const0());
  auto a = nl.add_input("a", 1);
  const NetId y = nl.add_cell(CellKind::Or2, q, a[0]);
  nl.add_output("o", {y});
  opt::optimize(nl);
  EXPECT_EQ(nl.num_flops(), 0u);
  EXPECT_EQ(nl.gate_count(), 0u);
}

TEST(ConstProp, SelfLoopConstantFlop) {
  Netlist nl;
  // q <= q, init 1: constant 1 forever.
  const NetId q = nl.add_cell(CellKind::Dff, nl.const0());
  nl.cell(nl.driver(q)).in[0] = q;
  nl.cell(nl.driver(q)).init = Tri::T;
  auto a = nl.add_input("a", 1);
  nl.add_output("o", {nl.add_cell(CellKind::And2, q, a[0])});
  opt::optimize(nl);
  EXPECT_EQ(nl.num_flops(), 0u);
  // compact() renumbers nets: compare against the post-optimization port.
  EXPECT_EQ(nl.outputs()[0].bits[0], nl.find_input("a")->bits[0]);
}

TEST(ConstProp, ToggleFlopIsNotConstant) {
  Netlist nl;
  const NetId q = nl.add_cell(CellKind::Dff, nl.const0());
  const NetId d = nl.add_cell(CellKind::Inv, q);
  nl.cell(nl.driver(q)).in[0] = d;  // re-fetch: add_cell may reallocate
  nl.add_output("o", {q});
  opt::optimize(nl);
  EXPECT_EQ(nl.num_flops(), 1u);
}

TEST(ConstProp, MuxWithConstantSelect) {
  Netlist nl;
  auto a = nl.add_input("a", 1);
  auto b = nl.add_input("b", 1);
  const NetId m = nl.add_cell(CellKind::Mux2, a[0], b[0], nl.const1());
  nl.add_output("o", {m});
  opt::optimize(nl);
  EXPECT_EQ(nl.gate_count(), 0u);
  EXPECT_EQ(nl.outputs()[0].bits[0], nl.find_input("b")->bits[0]);
}

TEST(Rewrite, DoubleInverterCollapses) {
  Netlist nl;
  auto a = nl.add_input("a", 1);
  const NetId i1 = nl.add_cell(CellKind::Inv, a[0]);
  const NetId i2 = nl.add_cell(CellKind::Inv, i1);
  nl.add_output("o", {i2});
  opt::optimize(nl);
  EXPECT_EQ(nl.gate_count(), 0u);
  EXPECT_EQ(nl.outputs()[0].bits[0], nl.find_input("a")->bits[0]);
}

TEST(Rewrite, ComplementAbsorption) {
  Netlist nl;
  auto a = nl.add_input("a", 2);
  const NetId x = nl.add_cell(CellKind::And2, a[0], a[1]);
  const NetId y = nl.add_cell(CellKind::Inv, x);  // single fanout INV(AND) -> NAND
  nl.add_output("o", {y});
  opt::optimize(nl);
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.cell(nl.driver(nl.outputs()[0].bits[0])).kind, CellKind::Nand2);
}

TEST(Rewrite, XorOfSameNetIsZero) {
  Netlist nl;
  auto a = nl.add_input("a", 1);
  const NetId x = nl.add_cell(CellKind::Xor2, a[0], a[0]);
  auto b = nl.add_input("b", 1);
  nl.add_output("o", {nl.add_cell(CellKind::Or2, x, b[0])});
  opt::optimize(nl);
  EXPECT_EQ(nl.gate_count(), 0u);
  EXPECT_EQ(nl.outputs()[0].bits[0], nl.find_input("b")->bits[0]);
}

TEST(Strash, MergesIdenticalGates) {
  Netlist nl;
  auto a = nl.add_input("a", 2);
  const NetId x = nl.add_cell(CellKind::And2, a[0], a[1]);
  const NetId y = nl.add_cell(CellKind::And2, a[1], a[0]);  // commutative twin
  nl.add_output("o", {nl.add_cell(CellKind::Xor2, x, y)});
  opt::optimize(nl);
  // AND(a,b) ^ AND(b,a) == 0 once merged.
  EXPECT_EQ(nl.gate_count(), 0u);
}

TEST(DeadCells, SweepsUnreachableLogic) {
  Netlist nl;
  auto a = nl.add_input("a", 2);
  const NetId used = nl.add_cell(CellKind::And2, a[0], a[1]);
  nl.add_cell(CellKind::Or2, a[0], a[1]);  // never used
  nl.add_output("o", {used});
  EXPECT_EQ(opt::sweep_dead_cells(nl), 1u);
  EXPECT_EQ(nl.gate_count(), 1u);
}

TEST(DeadCells, KeepsSequentialFeedback) {
  Netlist nl;
  const NetId q = nl.add_cell(CellKind::Dff, nl.const0());
  const NetId d = nl.add_cell(CellKind::Inv, q);
  nl.cell(nl.driver(q)).in[0] = d;
  nl.add_output("o", {q});
  // Only the orphaned tie cell may be swept; the flop and its feedback
  // inverter are reachable through the sequential loop.
  opt::sweep_dead_cells(nl);
  EXPECT_EQ(nl.num_flops(), 1u);
  EXPECT_EQ(nl.gate_count(), 2u);
}

class OptimizePreservesFunction : public ::testing::TestWithParam<int> {};

TEST_P(OptimizePreservesFunction, RandomNetlists) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Netlist nl = test::random_netlist(seed, 8, 200, 16, 8);
  Netlist ref = nl;  // value copy
  opt::optimize(nl);
  EXPECT_TRUE(check_netlist(nl).empty());
  EXPECT_TRUE(test::cosim_equal(ref, nl, seed + 1, 128));
  EXPECT_LE(nl.gate_count(), ref.gate_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizePreservesFunction, ::testing::Range(1, 21));

class ObfuscatePreservesFunction : public ::testing::TestWithParam<int> {};

TEST_P(ObfuscatePreservesFunction, RandomNetlists) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Netlist nl = test::random_netlist(seed, 8, 150, 10, 8);
  Netlist ref = nl;
  opt::ObfuscateOptions o;
  o.seed = seed * 13 + 5;
  opt::obfuscate(nl, o);
  EXPECT_TRUE(check_netlist(nl).empty());
  EXPECT_TRUE(test::cosim_equal(ref, nl, seed + 2, 128));
  EXPECT_GT(nl.gate_count(), ref.gate_count()) << "obfuscation must add overhead";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObfuscatePreservesFunction, ::testing::Range(1, 11));

TEST(Obfuscate, OptimizerRecoversMostOverhead) {
  Netlist nl = test::random_netlist(5, 8, 300, 16, 8);
  const std::size_t base = nl.gate_count();
  opt::obfuscate(nl);
  const std::size_t obf = nl.gate_count();
  opt::optimize(nl);
  EXPECT_GT(obf, base);
  // The optimizer can't always reach the exact original size but must
  // remove the bulk of camouflage and inverter pairs.
  EXPECT_LT(nl.gate_count(), base + (obf - base) / 2);
}

TEST(Optimizer, StatsAreConsistent) {
  Netlist nl = test::random_netlist(6);
  const std::size_t before = nl.gate_count();
  const auto st = opt::optimize(nl);
  EXPECT_EQ(st.gates_before, before);
  EXPECT_EQ(st.gates_after, nl.gate_count());
  EXPECT_GE(st.iterations, 1u);
}

}  // namespace
}  // namespace pdat
