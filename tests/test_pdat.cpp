#include <gtest/gtest.h>

#include "cores/ibex/ibex_core.h"
#include "formal/candidates.h"
#include "sim/bitsim.h"
#include "cores/ibex/ibex_tb.h"
#include "isa/rv32_assembler.h"
#include "netlist/check.h"
#include "opt/optimizer.h"
#include "pdat/pipeline.h"
#include "pdat/property_library.h"
#include "pdat/rewire.h"
#include "synth/builder.h"
#include "test_util.h"

namespace pdat {
namespace {

// --- property library ---------------------------------------------------------

TEST(PropertyLibrary, GeneratesConstAndImplicationProps) {
  Netlist nl;
  synth::Builder b(nl);
  auto in = b.input("in", 2);
  const NetId x = b.and_(in[0], in[1]);
  const NetId y = b.xor_(in[0], in[1]);
  b.output("o", {x, y});
  const auto props = annotate_netlist(nl);
  // and gate: 2 const + 2 impl; xor gate: 2 const.
  EXPECT_EQ(props.size(), 6u);
  int impls = 0;
  for (const auto& p : props) impls += p.kind == PropKind::Implies;
  EXPECT_EQ(impls, 2);
}

TEST(PropertyLibrary, ExclusionsRespected) {
  Netlist nl;
  synth::Builder b(nl);
  auto in = b.input("in", 2);
  const NetId x = b.and_(in[0], in[1]);
  b.output("o", {x});
  PropertyLibraryOptions opt;
  opt.excluded_nets = {x};
  EXPECT_TRUE(annotate_netlist(nl, opt).empty());
  PropertyLibraryOptions lim;
  lim.cell_limit = 0;
  EXPECT_TRUE(annotate_netlist(nl, lim).empty());
}

// --- rewiring -------------------------------------------------------------------

TEST(Rewire, ConstRewirePreservesFunctionUnderEnv) {
  // y = a & en, env: en == 0 -> y == 0.
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 1);
  auto en = b.input("en", 1);
  const NetId y = b.and_(a[0], en[0]);
  b.output("y", {y});

  GateProperty p;
  p.kind = PropKind::Const0;
  p.target = y;
  const auto st = apply_rewiring(nl, {p});
  EXPECT_EQ(st.const_rewires, 1u);
  EXPECT_TRUE(check_netlist(nl).empty());
  opt::optimize(nl);
  EXPECT_EQ(nl.gate_count(), 0u);
  // Output now tied to constant 0.
  const CellId drv = nl.driver(nl.outputs()[0].bits[0]);
  ASSERT_NE(drv, kNoCell);
  EXPECT_EQ(nl.cell(drv).kind, CellKind::Const0);
}

TEST(Rewire, ImplicationRewireForwardsInput) {
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 1);
  auto c = b.input("c", 1);
  const NetId y = b.and_(a[0], c[0]);
  b.output("y", {y});
  const auto props = annotate_netlist(nl);
  // Find the a->c implication (rewire to input 0 for AND).
  const GateProperty* impl = nullptr;
  for (const auto& p : props) {
    if (p.kind == PropKind::Implies && p.a == a[0]) impl = &p;
  }
  ASSERT_NE(impl, nullptr);
  const auto st = apply_rewiring(nl, {*impl});
  EXPECT_EQ(st.impl_rewires, 1u);
  opt::optimize(nl);
  EXPECT_EQ(nl.gate_count(), 0u);
  EXPECT_EQ(nl.outputs()[0].bits[0], nl.find_input("a")->bits[0]);
}

TEST(Rewire, ConstBeatsImplicationOnSameNet) {
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 2);
  const NetId y = b.and_(a[0], a[1]);
  b.output("y", {y});
  const auto props = annotate_netlist(nl);
  const auto st = apply_rewiring(nl, props);  // const0+const1+2 impls on y
  EXPECT_EQ(st.const_rewires, 1u);
  EXPECT_EQ(st.impl_rewires, 0u);
  EXPECT_GE(st.skipped_conflicts, 2u);
}

// --- pipeline on toy designs ------------------------------------------------------

TEST(PdatPipeline, RemovesEnableGatedCounter) {
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto data = b.input("data", 8);
  auto cnt = b.reg_decl(8, 0);
  b.connect(cnt, b.mux(en[0], cnt.q, b.add_const(cnt.q, 1)));
  b.output("o", b.xor_(data, cnt.q));
  opt::optimize(nl);
  const NetId en_net = nl.find_input("en")->bits[0];

  auto res = run_pdat(nl, [&](Netlist& a) {
    RestrictionResult r;
    synth::Builder ab(a);
    r.env.add_assume(ab.not_(en_net));
    return r;
  });
  EXPECT_EQ(res.transformed.num_flops(), 0u) << "counter must be removed";
  EXPECT_EQ(res.transformed.gate_count(), 0u) << "xor with 0 collapses";
}

TEST(PdatPipeline, VacuousEnvironmentRejected) {
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 1);
  b.output("o", {b.not_(a[0])});
  EXPECT_THROW(run_pdat(nl,
                        [&](Netlist& an) {
                          RestrictionResult r;
                          synth::Builder ab(an);
                          const NetId x = an.find_input("a")->bits[0];
                          r.env.add_assume(x);
                          r.env.add_assume(ab.not_(x));
                          return r;
                        }),
               PdatError);
}

TEST(PdatPipeline, UnconstrainedEnvChangesNothingFunctional) {
  Netlist nl = test::random_netlist(17, 6, 120, 10, 6);
  opt::optimize(nl);
  Netlist ref = nl;
  auto res = run_pdat(nl, [](Netlist&) { return RestrictionResult{}; });
  // Whatever PDAT proves with a free environment must hold on all real
  // executions: outputs must match cycle-for-cycle.
  EXPECT_TRUE(test::cosim_equal(ref, res.transformed, 999, 256));
}

class PdatRandomEnv : public ::testing::TestWithParam<int> {};

// The fundamental PDAT contract, property-tested: for any design and any
// input-tie environment, the transformed netlist is cycle-accurate with the
// original on every environment-conforming execution.
TEST_P(PdatRandomEnv, TransformedMatchesOriginalOnConformingInputs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Netlist nl = test::random_netlist(seed, 8, 150, 12, 6);
  opt::optimize(nl);
  Netlist ref = nl;
  Rng pick(seed * 13 + 1);
  // Tie two random input bits (one low, one high).
  const Port& in = *nl.find_input("in");
  const NetId low_bit = in.bits[pick.below(in.bits.size())];
  NetId high_bit = in.bits[pick.below(in.bits.size())];
  if (high_bit == low_bit) high_bit = in.bits[(pick.below(in.bits.size() - 1) + 1 +
                                               (low_bit - in.bits[0])) % in.bits.size()];

  PdatOptions popt;
  popt.properties.equivalence_props = (seed % 2) == 0;  // alternate the extension
  const PdatResult res = run_pdat(nl, [&](Netlist& a) {
    RestrictionResult r;
    synth::Builder ab(a);
    r.env.add_assume(ab.not_(low_bit));
    r.env.add_assume(high_bit);
    r.env.drivers.push_back(
        std::make_shared<ConstantDriver>(std::vector<NetId>{low_bit}, false));
    r.env.drivers.push_back(
        std::make_shared<ConstantDriver>(std::vector<NetId>{high_bit}, true));
    return r;
  }, popt);
  EXPECT_TRUE(check_netlist(res.transformed).empty());

  // Constrained cosimulation: identical random inputs except the tied bits.
  BitSim sa(ref), sb(res.transformed);
  Rng rng(seed + 77);
  const Port& ia = *ref.find_input("in");
  const Port& ib = *res.transformed.find_input("in");
  for (int t = 0; t < 256; ++t) {
    for (std::size_t i = 0; i < ia.bits.size(); ++i) {
      std::uint64_t w = rng.next();
      if (ia.bits[i] == low_bit) w = 0;
      if (ia.bits[i] == high_bit) w = ~0ULL;
      sa.set_input(ia.bits[i], w);
      sb.set_input(ib.bits[i], w);
    }
    sa.eval();
    sb.eval();
    for (std::size_t p = 0; p < ref.outputs().size(); ++p) {
      for (std::size_t i = 0; i < ref.outputs()[p].bits.size(); ++i) {
        ASSERT_EQ(sa.value(ref.outputs()[p].bits[i]),
                  sb.value(res.transformed.outputs()[p].bits[i]))
            << "seed " << seed << " cycle " << t;
      }
    }
    sa.latch();
    sb.latch();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdatRandomEnv, ::testing::Range(1, 13));

// --- pipeline on the Ibex core (end-to-end reduced-ISA correctness) --------------

struct IbexFixture {
  cores::IbexCore core;
  IbexFixture() {
    core = cores::build_ibex();
    opt::optimize(core.netlist);
    core.refresh_handles();
  }
};

const IbexFixture& ibex() {
  static const IbexFixture f;
  return f;
}

PdatResult reduce_ibex(const isa::RvSubset& subset) {
  const auto& f = ibex();
  auto instr_q = f.core.instr_reg_q;
  return run_pdat(f.core.netlist, [&](Netlist& a) {
    return restrict_isa_cutpoint(a, instr_q, subset);
  });
}

TEST(PdatIbex, Rv32iReducedCoreRunsRv32iPrograms) {
  const PdatResult res = reduce_ibex(isa::rv32_subset_named("rv32i"));
  EXPECT_LT(res.gates_after, res.gates_before * 3 / 4);
  EXPECT_TRUE(check_netlist(res.transformed).empty());
  // A program using only RV32I must behave identically on the reduced core.
  const auto prog = isa::assemble_rv32(R"(
      li a0, 0
      li t0, 1
      li t2, 0x200
    loop:
      add a0, a0, t0
      xor t1, a0, t0
      sw t1, 0(t2)
      lw t3, 0(t2)
      add a0, a0, t3
      srai a0, a0, 1
      addi t0, t0, 1
      li t4, 12
      blt t0, t4, loop
      sb a0, 4(t2)
      lbu a1, 4(t2)
      ebreak
  )");
  EXPECT_EQ(cores::cosim_against_iss(res.transformed, prog.words), "");
}

TEST(PdatIbex, Rv32eReducedCoreDropsUpperRegisterFile) {
  const PdatResult res = reduce_ibex(isa::rv32_subset_named("rv32e"));
  // 16 registers x 32 bits must be gone (plus more).
  EXPECT_LE(res.flops_after, res.flops_before - 512);
  const auto prog = isa::assemble_rv32(R"(
      li a0, 5
      li a1, 7
      add a2, a0, a1
      sub a3, a1, a0
      sw a2, 0x40(x0)
      lw a4, 0x40(x0)
      add a0, a2, a4
      ebreak
  )");
  EXPECT_EQ(cores::cosim_against_iss(res.transformed, prog.words), "");
}

TEST(PdatIbex, ReducedCoreIsNotRequiredToRunRemovedInstructions) {
  // Sanity on semantics: the rv32i-reduced core may misbehave on an M
  // instruction — but must not be *required* to. We simply document that a
  // mul on the reduced core and the ISS can diverge; no assertion on the
  // divergence itself, only that the reduced core still halts on ebreak.
  const PdatResult res = reduce_ibex(isa::rv32_subset_named("rv32i"));
  const auto prog = isa::assemble_rv32("li a0, 3\nli a1, 4\nmul a2, a0, a1\nebreak\n");
  cores::IbexTestbench tb(res.transformed);
  tb.load_words(0, prog.words);
  tb.reset();
  tb.run(10000);
  SUCCEED();
}

TEST(PdatIbex, MonotonicSubsetsGiveMonotonicGateCounts) {
  const auto imc = reduce_ibex(isa::rv32_subset_named("rv32imc"));
  const auto i = reduce_ibex(isa::rv32_subset_named("rv32i"));
  const auto e = reduce_ibex(isa::rv32_subset_named("rv32e"));
  EXPECT_LT(i.gates_after, imc.gates_after);
  EXPECT_LT(e.gates_after, i.gates_after);
}

TEST(PdatIbex, FunnelStatsAreConsistent) {
  const auto r = reduce_ibex(isa::rv32_subset_named("rv32i"));
  EXPECT_GE(r.candidates, r.after_sim_filter);
  EXPECT_GE(r.after_sim_filter, r.proven);
  EXPECT_GT(r.proven, 0u);
  EXPECT_EQ(r.rewires.const_rewires + r.rewires.impl_rewires +
                r.rewires.skipped_conflicts,
            r.proven);
  EXPECT_LE(r.gates_after, r.gates_before);
}

// --- equivalence-property extension (signal correspondence) ------------------

TEST(EquivProps, CandidatesFindDuplicatedLogic) {
  Netlist nl;
  synth::Builder b(nl);
  auto in = b.input("in", 4);
  // Two structurally different but equivalent cones.
  const NetId x = b.and_(in[0], in[1]);
  const NetId y = b.not_(b.or_(b.not_(in[0]), b.not_(in[1])));  // same function
  const NetId z = b.xor_(in[2], in[3]);
  b.output("o", {b.or_(x, z), b.and_(y, z)});
  Environment env;
  EquivCandidateOptions opt;
  opt.sim.cycles = 64;
  const auto cands = equivalence_candidates(nl, env, opt);
  bool found = false;
  for (const auto& p : cands) {
    if ((p.a == x && p.b == y) || (p.a == y && p.b == x)) found = true;
  }
  EXPECT_TRUE(found) << "x and y share a signature";
}

TEST(EquivProps, PipelineMergesDuplicatedCones) {
  Netlist nl;
  synth::Builder b(nl);
  auto in = b.input("in", 8);
  // Two identical-function adders whose structure differs enough that
  // structural hashing alone cannot merge them.
  const synth::Bus a_lo = synth::Builder::slice(in, 0, 4);
  const synth::Bus a_hi = synth::Builder::slice(in, 4, 4);
  const synth::Bus sum1 = b.add(a_lo, a_hi);
  // sum2 = a_hi + a_lo with majority-form carries — functionally identical
  // but structurally different, so structural hashing cannot merge it.
  synth::Bus sum2;
  {
    NetId carry = b.bit(false);
    for (int i = 0; i < 4; ++i) {
      const NetId x = a_hi[static_cast<std::size_t>(i)];
      const NetId y = a_lo[static_cast<std::size_t>(i)];
      sum2.push_back(b.xor_(b.xor_(x, y), carry));
      carry = b.or_(b.or_(b.and_(x, y), b.and_(x, carry)), b.and_(y, carry));
    }
  }
  b.output("s1", sum1);
  b.output("s2", sum2);
  Netlist ref = nl;
  opt::optimize(nl);
  const std::size_t base = nl.gate_count();

  PdatOptions popt;
  popt.properties.equivalence_props = true;
  const PdatResult res = run_pdat(nl, [](Netlist&) { return RestrictionResult{}; }, popt);
  EXPECT_LT(res.gates_after, base) << "equivalent cones must merge";
  EXPECT_TRUE(test::cosim_equal(ref, res.transformed, 31, 128));
}

TEST(EquivProps, FalseEquivalencesAreKilledBySat) {
  // Nets that agree on a short simulation but differ on rare inputs.
  Netlist nl;
  synth::Builder b(nl);
  auto in = b.input("in", 16);
  const NetId rare = b.eq_const(in, 0xbeef);  // ~never hit in random sim
  const NetId zero = b.and_(in[0], b.not_(in[0]));
  b.output("o", {rare, zero});
  Netlist ref = nl;
  PdatOptions popt;
  popt.properties.equivalence_props = true;
  popt.sim.cycles = 32;  // guarantee "rare" never fires during sampling
  const PdatResult res = run_pdat(nl, [](Netlist&) { return RestrictionResult{}; }, popt);
  // rare != zero, so the merged netlist must still compute rare correctly.
  BitSim sim(res.transformed);
  sim.set_port_uniform(*res.transformed.find_input("in"), 0xbeef);
  sim.eval();
  EXPECT_EQ(sim.read_port(*res.transformed.find_output("o"), 0), 1u);
  EXPECT_TRUE(test::cosim_equal(ref, res.transformed, 77, 256));
}

TEST(EquivProps, IbexWithEquivalencesStaysCorrect) {
  const auto& f = ibex();
  auto instr_q = f.core.instr_reg_q;
  PdatOptions popt;
  popt.properties.equivalence_props = true;
  const auto subset = isa::rv32_subset_named("rv32i");
  const PdatResult res = run_pdat(
      f.core.netlist, [&](Netlist& a) { return restrict_isa_cutpoint(a, instr_q, subset); },
      popt);
  const PdatResult base = reduce_ibex(subset);
  EXPECT_LE(res.gates_after, base.gates_after) << "extension may only help";
  const auto prog = isa::assemble_rv32(R"(
      li a0, 0
      li t0, 1
    loop:
      add a0, a0, t0
      xor a1, a0, t0
      sw a1, 0x300(x0)
      lw a2, 0x300(x0)
      add a0, a0, a2
      addi t0, t0, 1
      li t1, 10
      blt t0, t1, loop
      ebreak
  )");
  EXPECT_EQ(cores::cosim_against_iss(res.transformed, prog.words), "");
}

TEST(Strengthening, NonRewireablePropsAreNotApplied) {
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 1);
  const NetId x = b.or_(a[0], b.not_(a[0]));  // constant-1 net
  b.output("o", {x});
  GateProperty p;
  p.kind = PropKind::Const1;
  p.target = x;
  p.rewireable = false;
  const auto st = apply_rewiring(nl, {p});
  EXPECT_EQ(st.const_rewires, 0u);
  EXPECT_EQ(st.strengthen_only, 1u);
  EXPECT_NE(nl.driver(x), kNoCell) << "net must keep its driver";
}

}  // namespace
}  // namespace pdat
