// Process-isolated proof workers (DESIGN.md §5.11): wire protocol, fork
// containment of signals and rlimit kills, the failpoint framework, and the
// cross-isolation determinism contract — thread and process mode must be
// bit-identical for crash-free runs at any worker count.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "formal/induction.h"
#include "pdat/errors.h"
#include "runtime/checkpoint.h"
#include "runtime/journal.h"
#include "runtime/procworker.h"
#include "runtime/supervisor.h"
#include "test_util.h"
#include "util/failpoint.h"

namespace pdat {
namespace {

namespace rt = pdat::runtime;

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("pdat_procworker_" + name)).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

#define SKIP_WITHOUT_FORK()                                           \
  if (!rt::process_isolation_supported()) {                           \
    GTEST_SKIP() << "process isolation not supported on this platform"; \
  }

// ASan reserves terabytes of shadow address space, so RLIMIT_AS caps are
// meaningless under it.
#if defined(__SANITIZE_ADDRESS__)
constexpr bool kAsan = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kAsan = true;
#else
constexpr bool kAsan = false;
#endif
#else
constexpr bool kAsan = false;
#endif

rt::SupervisorOptions proc_opts(int threads) {
  rt::SupervisorOptions o;
  o.threads = threads;
  o.isolation = rt::Isolation::Process;
  return o;
}

// --- failpoint framework ------------------------------------------------------

TEST(Failpoints, UnarmedSiteIsAFreeNoOp) {
  util::failpoint_clear_all();
  EXPECT_EQ(util::failpoint("journal.append"), 0);
}

TEST(Failpoints, ArmingAnUnknownSiteThrows) {
  EXPECT_THROW(util::failpoint_set("no.such.site", "throw"), PdatError);
  EXPECT_THROW(util::failpoint_set("journal.append", "frobnicate"), PdatError);
}

TEST(Failpoints, EnospcTriggersExactlyCountTimes) {
  util::ScopedFailpoint fp("journal.append", "enospc:2");
  EXPECT_NE(util::failpoint("journal.append"), 0);
  EXPECT_NE(util::failpoint("journal.append"), 0);
  EXPECT_EQ(util::failpoint("journal.append"), 0) << "count bound must disarm the site";
  EXPECT_EQ(util::failpoint("journal.append"), 0);
}

TEST(Failpoints, ThrowActionThrowsWithTheSiteName) {
  util::ScopedFailpoint fp("proofcache.flush", "throw:1");
  try {
    util::failpoint("proofcache.flush");
    FAIL() << "armed throw action must throw";
  } catch (const PdatError& e) {
    EXPECT_NE(std::string(e.what()).find("proofcache.flush"), std::string::npos);
  }
}

TEST(Failpoints, ConsumeShipsTheSpecForForkedChildren) {
  util::ScopedFailpoint fp("procworker.child_entry", "exit(7):1");
  const auto spec = util::failpoint_consume("procworker.child_entry");
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(util::failpoint_consume("procworker.child_entry").has_value())
      << "consume must decrement the trigger count in the parent";
}

TEST(Failpoints, EverySiteIsDocumentedInReadme) {
  const std::string readme = slurp(std::string(PDAT_SOURCE_DIR) + "/README.md");
  ASSERT_FALSE(readme.empty()) << "README.md must be readable from the source tree";
  for (const std::string& site : util::failpoint_sites()) {
    EXPECT_NE(readme.find("`" + site + "`"), std::string::npos)
        << "failpoint site '" << site << "' is not documented in README.md";
  }
}

// --- wire protocol ------------------------------------------------------------

TEST(ProcWire, RecordRoundTrips) {
  const std::string rec = rt::encode_proc_record(7, std::string("pay\x00load", 8));
  std::size_t pos = 0;
  std::uint32_t type = 0;
  std::string payload;
  ASSERT_TRUE(rt::decode_proc_record(rec, pos, type, payload));
  EXPECT_EQ(type, 7u);
  EXPECT_EQ(payload, std::string("pay\x00load", 8));
  EXPECT_EQ(pos, rec.size());
}

TEST(ProcWire, EveryTruncationIsAnIncompletePrefixNeverGarbage) {
  const std::string rec = rt::encode_proc_record(3, "0123456789abcdef");
  for (std::size_t cut = 0; cut < rec.size(); ++cut) {
    std::size_t pos = 0;
    std::uint32_t type = 0;
    std::string payload;
    EXPECT_FALSE(rt::decode_proc_record(rec.substr(0, cut), pos, type, payload))
        << "cut=" << cut;
    EXPECT_EQ(pos, 0u) << "an incomplete record must not advance the cursor";
  }
}

TEST(ProcWire, CorruptPayloadFailsItsChecksum) {
  std::string rec = rt::encode_proc_record(3, "0123456789");
  rec[rec.size() - 1] = static_cast<char>(rec[rec.size() - 1] ^ 0x20);
  std::size_t pos = 0;
  std::uint32_t type = 0;
  std::string payload;
  EXPECT_THROW(rt::decode_proc_record(rec, pos, type, payload), PdatError);
}

TEST(ProcWire, OversizedLengthIsCorruptionNotAnAllocation) {
  std::string rec = rt::encode_proc_record(3, "x");
  rec[0] = rec[1] = rec[2] = rec[3] = static_cast<char>(0xff);  // length field
  std::size_t pos = 0;
  std::uint32_t type = 0;
  std::string payload;
  EXPECT_THROW(rt::decode_proc_record(rec, pos, type, payload), PdatError);
}

// --- process pool: results, COW, containment ----------------------------------

TEST(ProcWorker, ResultsFlowThroughTheCodecNotThroughMemory) {
  SKIP_WITHOUT_FORK();
  std::vector<int> side(9, 0);     // written only inside the child (COW)
  std::vector<int> results(9, 0);  // written by codec.apply in the parent
  rt::ProcResultCodec codec;
  codec.encode = [&](std::size_t j) { return std::to_string(side[j]); };
  codec.apply = [&](std::size_t j, const std::string& p) { results[j] = std::stoi(p); };
  rt::SupervisorOptions o = proc_opts(4);
  rt::Supervisor sup(o);
  const auto reports = sup.run(
      9,
      [&](std::size_t j, int, const rt::JobBudget&) {
        side[j] = static_cast<int>(j) * 3 + 1;
        return rt::JobStatus::Done;
      },
      &codec);
  ASSERT_EQ(reports.size(), 9u);
  for (std::size_t j = 0; j < 9; ++j) {
    EXPECT_TRUE(reports[j].completed) << "job " << j;
    EXPECT_EQ(results[j], static_cast<int>(j) * 3 + 1) << "codec must carry job " << j;
    EXPECT_EQ(side[j], 0) << "a child write must never be visible in the parent";
  }
}

TEST(ProcWorker, EscalatedBudgetsReachTheChildren) {
  SKIP_WITHOUT_FORK();
  rt::SupervisorOptions o = proc_opts(1);
  o.max_attempts = 4;
  o.escalation = 4.0;
  o.initial.conflicts = 10;
  rt::Supervisor sup(o);
  // Each attempt runs in a fresh child; the retry decision is made purely
  // from the budget the parent shipped, so completion at attempt 3 proves
  // the 10 → 41 → 165 escalation crossed the process boundary.
  const auto reports = sup.run(1, [](std::size_t, int, const rt::JobBudget& b) {
    return b.conflicts < 100 ? rt::JobStatus::Retry : rt::JobStatus::Done;
  });
  EXPECT_TRUE(reports[0].completed);
  EXPECT_EQ(reports[0].attempts, 3);
  EXPECT_EQ(sup.stats().retries, 2u);
}

TEST(ProcWorker, ThrownExceptionIsAnInBandCrashLikeThreadMode) {
  SKIP_WITHOUT_FORK();
  rt::SupervisorOptions o = proc_opts(2);
  o.max_attempts = 2;
  rt::Supervisor sup(o);
  const auto reports = sup.run(3, [](std::size_t j, int attempt, const rt::JobBudget&) {
    if (j == 0 && attempt == 1) throw PdatError("transient failure");
    if (j == 1) throw std::runtime_error("pathological query");
    return rt::JobStatus::Done;
  });
  EXPECT_TRUE(reports[0].completed);
  EXPECT_TRUE(reports[0].crashed);
  EXPECT_TRUE(reports[1].dropped);
  EXPECT_EQ(reports[1].last_error, "pathological query");
  EXPECT_TRUE(reports[2].completed);
  EXPECT_EQ(sup.stats().crashes, 3u);
  // In-band crashes are deterministic and must not count as child deaths.
  for (const auto& r : reports) EXPECT_EQ(r.child_deaths, 0) << "in-band crash";
}

TEST(ProcWorker, ChildSegfaultIsContainedAndRetried) {
  SKIP_WITHOUT_FORK();
  util::ScopedFailpoint fp("procworker.child_entry", "segv:1");
  rt::SupervisorOptions o = proc_opts(2);
  o.max_attempts = 3;
  rt::Supervisor sup(o);
  const auto reports = sup.run(4, [](std::size_t, int, const rt::JobBudget&) {
    return rt::JobStatus::Done;
  });
  int deaths = 0;
  for (const auto& r : reports) {
    EXPECT_TRUE(r.completed) << "a single segfault must not cost the job";
    deaths += r.child_deaths;
  }
  EXPECT_EQ(deaths, 1);
  EXPECT_EQ(sup.stats().proc_restarts, 1u);
  EXPECT_EQ(sup.stats().crashes, 0u) << "a child death is out-of-band, not a crash";
}

TEST(ProcWorker, ChildAbortIsContainedAndRetried) {
  SKIP_WITHOUT_FORK();
  util::ScopedFailpoint fp("procworker.child_entry", "abort:1");
  rt::SupervisorOptions o = proc_opts(1);
  o.max_attempts = 2;
  rt::Supervisor sup(o);
  const auto reports = sup.run(1, [](std::size_t, int, const rt::JobBudget&) {
    return rt::JobStatus::Done;
  });
  EXPECT_TRUE(reports[0].completed);
  EXPECT_EQ(reports[0].child_deaths, 1);
}

TEST(ProcWorker, BadChildExitIsContainedAndRetried) {
  SKIP_WITHOUT_FORK();
  util::ScopedFailpoint fp("procworker.child_entry", "exit(7):1");
  rt::SupervisorOptions o = proc_opts(1);
  o.max_attempts = 2;
  rt::Supervisor sup(o);
  const auto reports = sup.run(1, [](std::size_t, int, const rt::JobBudget&) {
    return rt::JobStatus::Done;
  });
  EXPECT_TRUE(reports[0].completed);
  EXPECT_EQ(reports[0].child_deaths, 1);
}

TEST(ProcWorker, PersistentlyDyingJobIsDroppedConservatively) {
  SKIP_WITHOUT_FORK();
  util::ScopedFailpoint fp("procworker.child_entry", "segv");  // every attempt
  rt::SupervisorOptions o = proc_opts(1);
  o.max_attempts = 2;
  rt::Supervisor sup(o);
  const auto reports = sup.run(1, [](std::size_t, int, const rt::JobBudget&) {
    return rt::JobStatus::Done;
  });
  EXPECT_FALSE(reports[0].completed);
  EXPECT_TRUE(reports[0].dropped) << "a job that keeps killing its child must drop";
  EXPECT_EQ(reports[0].child_deaths, 2);
  EXPECT_EQ(sup.stats().drops, 1u);
}

TEST(ProcWorker, AddressSpaceLimitContainsRunawayAllocation) {
  SKIP_WITHOUT_FORK();
  if (kAsan) GTEST_SKIP() << "RLIMIT_AS is meaningless under ASan shadow memory";
  rt::SupervisorOptions o = proc_opts(1);
  o.max_attempts = 2;
  o.proc_limits.address_space_bytes = std::size_t{1} << 30;  // 1 GiB
  rt::Supervisor sup(o);
  const auto reports = sup.run(1, [](std::size_t, int attempt, const rt::JobBudget&) {
    if (attempt == 1) {
      // Far past the cap: the kernel refuses the mapping, so this either
      // throws bad_alloc (in-band crash) or dies — both must be contained.
      std::vector<char> hog(std::size_t{3} << 30, 1);
      if (hog[42] == 0) return rt::JobStatus::Retry;  // defeat optimization
    }
    return rt::JobStatus::Done;
  });
  EXPECT_TRUE(reports[0].completed) << "the retry without the allocation must succeed";
  EXPECT_EQ(reports[0].attempts, 2);
  EXPECT_GE(reports[0].child_deaths + (reports[0].crashed ? 1 : 0), 1)
      << "the first attempt must have been contained one way or the other";
}

TEST(ProcWorker, CpuLimitKillsASpinningChild) {
  SKIP_WITHOUT_FORK();
  rt::SupervisorOptions o = proc_opts(1);
  o.max_attempts = 2;
  o.proc_limits.cpu_seconds = 1;  // SIGXCPU after 1s of CPU time
  rt::Supervisor sup(o);
  const auto reports = sup.run(1, [](std::size_t, int attempt, const rt::JobBudget&) {
    if (attempt == 1) {
      volatile std::uint64_t spin = 0;
      for (;;) spin = spin + 1;  // ignores every cooperative budget
    }
    return rt::JobStatus::Done;
  });
  EXPECT_TRUE(reports[0].completed);
  EXPECT_EQ(reports[0].child_deaths, 1) << "SIGXCPU must read as an out-of-band death";
}

TEST(ProcWorker, WedgedChildIsKilledAtTheAttemptDeadline) {
  SKIP_WITHOUT_FORK();
  rt::SupervisorOptions o = proc_opts(1);
  o.max_attempts = 2;
  o.initial.wall_seconds = 0.2;
  o.proc_limits.kill_grace_seconds = 0.2;
  rt::Supervisor sup(o);
  const auto t0 = std::chrono::steady_clock::now();
  const auto reports = sup.run(1, [](std::size_t, int attempt, const rt::JobBudget&) {
    if (attempt == 1) {
      // Sleeps through its wall budget without polling it — the watchdog
      // must SIGKILL it instead of waiting the full minute.
      std::this_thread::sleep_for(std::chrono::seconds(60));
    }
    return rt::JobStatus::Done;
  });
  const double took = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_TRUE(reports[0].completed);
  EXPECT_EQ(reports[0].child_deaths, 1);
  EXPECT_GE(sup.stats().proc_kills, 1u);
  EXPECT_LT(took, 30.0) << "the watchdog must not wait out the sleep";
}

TEST(ProcWorker, CertificationErrorEscapesContainment) {
  SKIP_WITHOUT_FORK();
  rt::SupervisorOptions o = proc_opts(2);
  o.max_attempts = 3;
  rt::Supervisor sup(o);
  EXPECT_THROW(sup.run(6,
                       [](std::size_t j, int, const rt::JobBudget&) {
                         if (j == 2) throw CertificationError("UNSAT certificate rejected");
                         return rt::JobStatus::Done;
                       }),
               CertificationError)
      << "a failed certificate must cross the process boundary and abort the run";
}

// --- cross-isolation determinism ----------------------------------------------

GateProperty make_const(NetId n, bool one) {
  GateProperty p;
  p.kind = one ? PropKind::Const1 : PropKind::Const0;
  p.target = n;
  return p;
}

std::vector<GateProperty> gate_const_candidates(const Netlist& nl) {
  std::vector<GateProperty> cands;
  for (CellId id : nl.live_cells()) {
    const auto& c = nl.cell(id);
    if (cell_is_const(c.kind)) continue;
    cands.push_back(make_const(c.out, false));
    cands.push_back(make_const(c.out, true));
  }
  return cands;
}

std::string describe_all(const std::vector<GateProperty>& props) {
  std::string s;
  for (const auto& p : props) s += p.describe() + "\n";
  return s;
}

void expect_same_deterministic_stats(const InductionStats& a, const InductionStats& b) {
  EXPECT_EQ(a.sat_calls, b.sat_calls);
  EXPECT_EQ(a.cex_kills, b.cex_kills);
  EXPECT_EQ(a.budget_kills, b.budget_kills);
  EXPECT_EQ(a.after_base, b.after_base);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.proven, b.proven);
}

TEST(ProcInduction, ProcessAndThreadModesAreBitIdentical) {
  SKIP_WITHOUT_FORK();
  const Netlist nl = test::random_netlist(7, 8, 160, 14, 6);
  const Environment env;
  const auto cands = gate_const_candidates(nl);

  InductionOptions thread_opt;
  thread_opt.batch_size = 8;  // several jobs per round
  InductionOptions proc_opt = thread_opt;
  proc_opt.isolation = rt::Isolation::Process;

  for (const int threads : {1, 4}) {
    thread_opt.threads = threads;
    proc_opt.threads = threads;
    InductionStats st, sp;
    const auto pt = prove_invariants(nl, env, cands, thread_opt, &st);
    const auto pp = prove_invariants(nl, env, cands, proc_opt, &sp);
    EXPECT_EQ(describe_all(pt), describe_all(pp)) << "threads=" << threads;
    expect_same_deterministic_stats(st, sp);
  }
}

TEST(ProcInduction, ChaosScheduleDoesNotChangeTheProvedSet) {
  SKIP_WITHOUT_FORK();
  const Netlist nl = test::random_netlist(21, 8, 160, 14, 6);
  const Environment env;
  const auto cands = gate_const_candidates(nl);

  InductionOptions opt;
  opt.batch_size = 8;
  opt.threads = 2;
  InductionStats clean;
  const auto proven_clean = prove_invariants(nl, env, cands, opt, &clean);

  opt.isolation = rt::Isolation::Process;
  InductionStats chaos;
  util::ScopedFailpoint fp("procworker.child_entry", "segv:2");
  const auto proven_chaos = prove_invariants(nl, env, cands, opt, &chaos);

  EXPECT_EQ(describe_all(proven_clean), describe_all(proven_chaos))
      << "a contained child death must never change the proved set";
  expect_same_deterministic_stats(clean, chaos);
  EXPECT_EQ(chaos.proc_restarts, 2u);
}

TEST(ProcInduction, MidRunKillAndResumeIsDeterministicInProcessMode) {
  SKIP_WITHOUT_FORK();
  const Netlist nl = test::random_netlist(11, 8, 160, 14, 6);
  const Environment env;
  const auto cands = gate_const_candidates(nl);

  const std::string full = tmp_path("proc_full.jrn");
  const std::string crashed = tmp_path("proc_crashed.jrn");

  InductionOptions opt;
  opt.batch_size = 8;
  opt.isolation = rt::Isolation::Process;
  opt.threads = 2;
  opt.journal_path = full;
  InductionStats st_full;
  const auto proven_full = prove_invariants(nl, env, cands, opt, &st_full);

  // Simulate a SIGKILL after the base case: keep only the journal's header
  // and base-round records, exactly what a mid-run kill leaves behind.
  const auto recs = rt::read_journal(full);
  ASSERT_TRUE(recs.has_value());
  ASSERT_GE(recs->size(), 2u);
  {
    auto w = rt::JournalWriter::create(crashed);
    w.append((*recs)[0].type, (*recs)[0].payload);
    w.append((*recs)[1].type, (*recs)[1].payload);
  }

  InductionOptions ropt = opt;
  ropt.journal_path = crashed;
  ropt.resume_from = crashed;
  ropt.threads = 4;  // resume on a different worker count, same result
  InductionStats st_res;
  const auto proven_res = prove_invariants(nl, env, cands, ropt, &st_res);

  EXPECT_EQ(st_res.resumed_from_round, rt::kBaseRound);
  EXPECT_EQ(describe_all(proven_full), describe_all(proven_res));
  expect_same_deterministic_stats(st_full, st_res);
  std::remove(full.c_str());
  std::remove(crashed.c_str());
}

TEST(ProcInduction, ProofCacheStoresCrossTheProcessBoundary) {
  SKIP_WITHOUT_FORK();
  const Netlist nl = test::random_netlist(33, 8, 160, 14, 6);
  const Environment env;
  const auto cands = gate_const_candidates(nl);
  const std::string cache = tmp_path("proc_cache.pdatpc");
  std::filesystem::remove(cache);

  InductionOptions opt;
  opt.batch_size = 8;
  opt.threads = 2;
  opt.isolation = rt::Isolation::Process;
  opt.proof_cache_path = cache;
  InductionStats cold;
  const auto proven_cold = prove_invariants(nl, env, cands, opt, &cold);
  EXPECT_GT(cold.cache_stores, 0u)
      << "child-side cache stores must be shipped back and persisted";

  // The warm rerun replays every outcome from the cache the children filled.
  InductionStats warm;
  const auto proven_warm = prove_invariants(nl, env, cands, opt, &warm);
  EXPECT_EQ(describe_all(proven_cold), describe_all(proven_warm));
  expect_same_deterministic_stats(cold, warm);
  EXPECT_GT(warm.cache_hits, 0u);
  std::filesystem::remove(cache);
}

}  // namespace
}  // namespace pdat
