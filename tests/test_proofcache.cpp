// Property-based tests for the proof-cache on-disk format (ISSUE 4):
// truncated, bit-flipped, or version-bumped files must load as
// empty-with-warning (or a shorter valid prefix) — never crash, never
// surface a stale or corrupted payload. Mirrors the journal-corruption
// tests in test_runtime.cpp.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "base/rng.h"
#include "formal/proofcache.h"
#include "util/failpoint.h"

namespace pdat {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("pdat_proofcache_" + name)).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

CacheKey key_of(std::uint64_t i) {
  Fnv128 h;
  h.str("test-key");
  h.u64(i);
  return h.digest();
}

std::string payload_of(std::uint64_t i) {
  return "payload-" + std::to_string(i) + std::string(i % 7, '#');
}

/// Writes a cache with n entries and returns its path.
std::string build_cache(const std::string& name, std::uint64_t n) {
  const std::string path = tmp_path(name);
  std::filesystem::remove(path);
  {
    ProofCache pc(path);
    for (std::uint64_t i = 0; i < n; ++i) EXPECT_TRUE(pc.insert(key_of(i), payload_of(i)));
    pc.flush();
  }
  return path;
}

TEST(ProofCache, RoundTripsEntriesAcrossReopen) {
  const std::string path = build_cache("roundtrip.pdatpc", 10);
  ProofCache pc(path);
  EXPECT_EQ(pc.size(), 10u);
  EXPECT_EQ(pc.stats().loaded, 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto p = pc.lookup(key_of(i));
    ASSERT_TRUE(p.has_value()) << "entry " << i;
    EXPECT_EQ(*p, payload_of(i));
  }
  EXPECT_FALSE(pc.lookup(key_of(99)).has_value());
  EXPECT_EQ(pc.stats().hits, 10u);
  EXPECT_EQ(pc.stats().misses, 1u);
  std::filesystem::remove(path);
}

TEST(ProofCache, InMemoryCacheNeedsNoFile) {
  ProofCache pc;
  EXPECT_TRUE(pc.insert(key_of(1), "x"));
  EXPECT_FALSE(pc.insert(key_of(1), "y"));  // first insert wins
  EXPECT_EQ(*pc.lookup(key_of(1)), "x");
  pc.flush();  // no-op, must not throw
}

TEST(ProofCache, MissingFileLoadsEmpty) {
  const std::string path = tmp_path("missing.pdatpc");
  std::filesystem::remove(path);
  ProofCache pc(path);
  EXPECT_EQ(pc.size(), 0u);
  EXPECT_FALSE(pc.stats().rejected_file);
}

TEST(ProofCache, EveryTruncationLoadsAValidPrefix) {
  // Property: for EVERY prefix length of a valid file, loading accepts some
  // leading run of complete records and every accepted payload is exact.
  const std::string path = build_cache("trunc.pdatpc", 6);
  const std::string full = slurp(path);
  ASSERT_GT(full.size(), 12u);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    spit(path, full.substr(0, cut));
    ProofCache pc(path);
    ASSERT_LE(pc.size(), 6u);
    std::uint64_t present = 0;
    for (std::uint64_t i = 0; i < 6; ++i) {
      const auto p = pc.lookup(key_of(i));
      if (!p.has_value()) continue;
      ++present;
      EXPECT_EQ(*p, payload_of(i)) << "cut=" << cut << " entry=" << i;
    }
    EXPECT_EQ(present, pc.stats().loaded) << "cut=" << cut;
  }
  std::filesystem::remove(path);
}

TEST(ProofCache, EverySingleBitFlipNeverSurfacesACorruptPayload) {
  const std::string path = build_cache("flip.pdatpc", 4);
  const std::string full = slurp(path);
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    std::string mutated = full;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x10);
    spit(path, mutated);
    ProofCache pc(path);
    // Whatever loads must be byte-exact; a flipped payload byte fails its
    // checksum and truncates the load instead.
    for (std::uint64_t i = 0; i < 4; ++i) {
      const auto p = pc.lookup(key_of(i));
      if (p.has_value()) {
        EXPECT_EQ(*p, payload_of(i)) << "flip at byte " << byte;
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(ProofCache, VersionBumpLoadsEmptyAndRewrites) {
  const std::string path = build_cache("version.pdatpc", 3);
  std::string full = slurp(path);
  full[8] = static_cast<char>(full[8] + 1);  // bump the version field
  spit(path, full);
  {
    ProofCache pc(path);
    EXPECT_EQ(pc.size(), 0u);
    EXPECT_TRUE(pc.stats().rejected_file);
    // New entries written through a rejected file recreate it wholesale.
    EXPECT_TRUE(pc.insert(key_of(100), "fresh"));
    pc.flush();
  }
  ProofCache reopened(path);
  EXPECT_FALSE(reopened.stats().rejected_file);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(*reopened.lookup(key_of(100)), "fresh");
  std::filesystem::remove(path);
}

TEST(ProofCache, AlienFileLoadsEmptyWithWarning) {
  const std::string path = tmp_path("alien.pdatpc");
  spit(path, "this is not a proof cache at all, but it is long enough");
  ProofCache pc(path);
  EXPECT_EQ(pc.size(), 0u);
  EXPECT_TRUE(pc.stats().rejected_file);
  std::filesystem::remove(path);
}

TEST(ProofCache, AppendAfterTornTailTruncatesTheGarbage) {
  const std::string path = build_cache("torn.pdatpc", 3);
  const std::string full = slurp(path);
  spit(path, full + "garbage-torn-tail");
  {
    ProofCache pc(path);
    EXPECT_EQ(pc.stats().loaded, 3u);
    EXPECT_GT(pc.stats().rejected_tail_bytes, 0u);
    EXPECT_TRUE(pc.insert(key_of(3), payload_of(3)));
    pc.flush();
  }
  ProofCache reopened(path);
  EXPECT_EQ(reopened.stats().loaded, 4u);
  EXPECT_EQ(reopened.stats().rejected_tail_bytes, 0u);
  EXPECT_EQ(*reopened.lookup(key_of(3)), payload_of(3));
  std::filesystem::remove(path);
}

TEST(ProofCache, RandomizedCorruptionNeverCrashesOrLies) {
  // Property loop: random mutations (truncate / flip / splice) over a valid
  // file; every load must succeed and only ever return exact payloads.
  const std::string path = build_cache("randomized.pdatpc", 8);
  const std::string full = slurp(path);
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    switch (rng.below(3)) {
      case 0: mutated = mutated.substr(0, rng.below(mutated.size() + 1)); break;
      case 1: {
        const std::size_t at = rng.below(mutated.size());
        mutated[at] = static_cast<char>(rng.next());
        break;
      }
      default: {
        const std::size_t at = rng.below(mutated.size());
        mutated.insert(at, std::string(1 + rng.below(9), static_cast<char>(rng.next())));
        break;
      }
    }
    spit(path, mutated);
    ProofCache pc(path);
    for (std::uint64_t i = 0; i < 8; ++i) {
      const auto p = pc.lookup(key_of(i));
      if (p.has_value()) EXPECT_EQ(*p, payload_of(i)) << "trial " << trial;
    }
  }
  std::filesystem::remove(path);
}

TEST(ProofCache, FlushAfterFileDeletedRecreatesIt) {
  const std::string path = build_cache("deleted.pdatpc", 2);
  {
    ProofCache pc(path);
    std::filesystem::remove(path);
    EXPECT_TRUE(pc.insert(key_of(2), payload_of(2)));
    pc.flush();
    ASSERT_TRUE(std::filesystem::exists(path));
  }
  ProofCache reopened(path);
  EXPECT_EQ(reopened.stats().loaded, 3u);
  EXPECT_EQ(*reopened.lookup(key_of(0)), payload_of(0));
  std::filesystem::remove(path);
}

TEST(ProofCache, UpdateUpgradesInPlaceAcrossReopen) {
  const std::string path = tmp_path("update.pdatpc");
  std::filesystem::remove(path);
  {
    ProofCache pc(path);
    EXPECT_TRUE(pc.insert(key_of(0), "uncertified"));
    pc.flush();
    // insert() is first-wins: a second insert of the same key is a no-op.
    EXPECT_FALSE(pc.insert(key_of(0), "certified"));
    EXPECT_EQ(*pc.lookup(key_of(0)), "uncertified");
    // update() overwrites in memory and appends a superseding record.
    EXPECT_TRUE(pc.update(key_of(0), "certified"));
    EXPECT_EQ(*pc.lookup(key_of(0)), "certified");
    pc.flush();
  }
  // The file now holds both records; load resolves last-record-wins.
  ProofCache reopened(path);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(*reopened.lookup(key_of(0)), "certified");
  std::filesystem::remove(path);
}

TEST(ProofCache, UpdateWithIdenticalPayloadIsANoOp) {
  const std::string path = tmp_path("update_noop.pdatpc");
  std::filesystem::remove(path);
  ProofCache pc(path);
  EXPECT_TRUE(pc.insert(key_of(0), "same"));
  pc.flush();
  const auto bytes_before = std::filesystem::file_size(path);
  EXPECT_FALSE(pc.update(key_of(0), "same"));
  pc.flush();
  EXPECT_EQ(std::filesystem::file_size(path), bytes_before)
      << "a no-op update must not grow the file";
  std::filesystem::remove(path);
}

// --- durability under injected faults -----------------------------------------

TEST(ProofCacheChaos, AppendEnospcKeepsEntriesInMemoryForRetry) {
  const std::string path = build_cache("enospc_append.pdatpc", 2);
  {
    ProofCache pc(path);
    EXPECT_TRUE(pc.insert(key_of(2), payload_of(2)));
    {
      util::ScopedFailpoint fp("proofcache.flush", "enospc:1");
      pc.flush();  // a failed flush is never fatal
    }
    EXPECT_EQ(pc.stats().flush_failures, 1u);

    // The disk now ends in half a record — exactly what a full disk leaves.
    // A reload of those bytes must recover the longest valid prefix.
    const std::string torn = slurp(path);
    const std::string copy = tmp_path("enospc_append_copy.pdatpc");
    spit(copy, torn);
    {
      ProofCache snapshot(copy);
      EXPECT_EQ(snapshot.stats().loaded, 2u) << "only the pre-fault records may load";
      EXPECT_GT(snapshot.stats().rejected_tail_bytes, 0u);
      EXPECT_FALSE(snapshot.lookup(key_of(2)).has_value());
    }
    std::filesystem::remove(copy);

    // The entry stayed unsaved: the retry truncates the torn tail and lands it.
    pc.flush();
    EXPECT_EQ(pc.stats().flush_failures, 1u);
  }
  ProofCache reopened(path);
  EXPECT_EQ(reopened.stats().loaded, 3u);
  EXPECT_EQ(reopened.stats().rejected_tail_bytes, 0u);
  EXPECT_EQ(*reopened.lookup(key_of(2)), payload_of(2));
  std::filesystem::remove(path);
}

TEST(ProofCacheChaos, FailedRewriteNeverReplacesTheExistingFile) {
  // A rejected-header file is rewritten via tmp+rename; a fault mid-rewrite
  // must leave the original bytes untouched and no stray tmp behind.
  const std::string path = tmp_path("enospc_rewrite.pdatpc");
  spit(path, "this is not a proof cache at all, but it is long enough");
  const std::string before = slurp(path);
  ProofCache pc(path);
  EXPECT_TRUE(pc.stats().rejected_file);
  EXPECT_TRUE(pc.insert(key_of(0), payload_of(0)));
  {
    util::ScopedFailpoint fp("proofcache.flush", "enospc:1");
    pc.flush();
  }
  EXPECT_EQ(pc.stats().flush_failures, 1u);
  EXPECT_EQ(slurp(path), before) << "a failed rewrite must not touch the original";
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << "the torn tmp must be removed";

  pc.flush();  // disarmed: the rewrite goes through atomically
  ProofCache reopened(path);
  EXPECT_FALSE(reopened.stats().rejected_file);
  EXPECT_EQ(*reopened.lookup(key_of(0)), payload_of(0));
  std::filesystem::remove(path);
}

TEST(ProofCacheChaos, FreshFileEnospcLeavesNothingBehind) {
  const std::string path = tmp_path("enospc_fresh.pdatpc");
  std::filesystem::remove(path);
  ProofCache pc(path);
  EXPECT_TRUE(pc.insert(key_of(0), payload_of(0)));
  {
    util::ScopedFailpoint fp("proofcache.flush", "enospc:1");
    pc.flush();
  }
  EXPECT_EQ(pc.stats().flush_failures, 1u);
  EXPECT_FALSE(std::filesystem::exists(path))
      << "a fresh-file rewrite that fails must not create a half-written cache";
  pc.flush();
  ASSERT_TRUE(std::filesystem::exists(path));
  ProofCache reopened(path);
  EXPECT_EQ(*reopened.lookup(key_of(0)), payload_of(0));
  std::filesystem::remove(path);
}

TEST(ProofCache, UpdateOfAMissingKeyInserts) {
  const std::string path = tmp_path("update_insert.pdatpc");
  std::filesystem::remove(path);
  {
    ProofCache pc(path);
    EXPECT_TRUE(pc.update(key_of(7), payload_of(7)));
    pc.flush();
  }
  ProofCache reopened(path);
  EXPECT_EQ(*reopened.lookup(key_of(7)), payload_of(7));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace pdat
