#include <gtest/gtest.h>

#include <sstream>

#include "netlist/netlist.h"
#include "pdat/report.h"
#include "sat/solver.h"
#include "synth/builder.h"

namespace pdat {
namespace {

TEST(Report, RowFromNetlist) {
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 2);
  b.output("o", {b.and_(a[0], a[1])});
  const VariantRow r = make_row("toy", nl);
  EXPECT_EQ(r.name, "toy");
  EXPECT_EQ(r.gates, 1u);
  EXPECT_GT(r.area, 0.0);
}

TEST(Report, ReductionsComputedAgainstNamedBaseline) {
  std::vector<VariantRow> rows(2);
  rows[0].name = "full";
  rows[0].gates = 1000;
  rows[0].area = 2000;
  rows[1].name = "reduced";
  rows[1].gates = 800;
  rows[1].area = 1500;
  std::ostringstream os;
  print_variant_table(os, rows, "t", "full");
  const std::string text = os.str();
  EXPECT_NE(text.find("20.0%"), std::string::npos);
  EXPECT_NE(text.find("25.0%"), std::string::npos);
  EXPECT_NE(text.find("reduced"), std::string::npos);
}

TEST(Report, EmptyRowsDoNotCrash) {
  std::ostringstream os;
  print_variant_table(os, {}, "empty");
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(Netlist, KindHistogramCountsLiveCells) {
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 2);
  const NetId x = b.and_(a[0], a[1]);
  const NetId y = b.and_(a[1], a[0]);
  b.output("o", {b.xor_(x, y)});
  auto h = nl.kind_histogram();
  EXPECT_EQ(h[static_cast<std::size_t>(CellKind::And2)], 2u);
  EXPECT_EQ(h[static_cast<std::size_t>(CellKind::Xor2)], 1u);
  nl.kill_cell(nl.driver(y));
  h = nl.kind_histogram();
  EXPECT_EQ(h[static_cast<std::size_t>(CellKind::And2)], 1u);
}

TEST(Sat, ConflictCoreIsSubsetOfAssumptions) {
  using namespace sat;
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause(~mk_lit(a), ~mk_lit(b));  // a and b conflict
  // c is irrelevant.
  ASSERT_EQ(s.solve({mk_lit(c), mk_lit(a), mk_lit(b)}), SolveResult::Unsat);
  const auto& core = s.conflict_core();
  EXPECT_FALSE(core.empty());
  for (const Lit l : core) {
    EXPECT_TRUE(l == ~mk_lit(a) || l == ~mk_lit(b) || l == ~mk_lit(c));
  }
  // The core must mention a or b (the real conflict), in negated form.
  bool mentions_ab = false;
  for (const Lit l : core) {
    if (l.var() == a || l.var() == b) mentions_ab = true;
  }
  EXPECT_TRUE(mentions_ab);
}

}  // namespace
}  // namespace pdat
