#include <gtest/gtest.h>

#include "formal/bmc.h"
#include "isa/rv32_isa.h"
#include "isa/thumb_subsets.h"
#include "pdat/restrictions.h"
#include "sim/bitsim.h"
#include "synth/builder.h"

namespace pdat {
namespace {

Netlist tiny_core_like() {
  // An "instruction port" feeding a register and some decode-ish logic.
  Netlist nl;
  synth::Builder b(nl);
  auto instr = b.input("instr", 32);
  auto r = b.reg_decl(32, 0x13);
  b.connect(r, instr);
  b.output("is_lui", {b.eq_const(synth::Builder::slice(r.q, 0, 7), 0x37)});
  b.output("q", r.q);
  return nl;
}

TEST(Restrictions, PortBasedConstrainsInput) {
  Netlist nl = tiny_core_like();
  RestrictionResult r = restrict_isa_port(nl, "instr", isa::rv32_subset_named("rv32i"));
  EXPECT_TRUE(r.cut_nets.empty());
  ASSERT_EQ(r.env.assumes.size(), 1u);
  EXPECT_TRUE(env_satisfiable(nl, r.env, 3));
  // The all-zero word is illegal: with the assume in force, BMC must not be
  // able to make the port all-zero.
  GateProperty p;
  p.kind = PropKind::Const1;  // claim: "some bit of instr is set" is not a
                              // single-net property, so instead check that
                              // LUI is reachable (sanity of the env).
  p.target = nl.find_output("is_lui")->bits[0];
  p.kind = PropKind::Const0;
  const BmcResult res = bmc_check(nl, r.env, p, 3);
  EXPECT_TRUE(res.violated) << "a LUI must be fetchable under rv32i";
}

TEST(Restrictions, PortBasedRejectsMissingPort) {
  Netlist nl = tiny_core_like();
  EXPECT_THROW(restrict_isa_port(nl, "nope", isa::rv32_subset_named("rv32i")), PdatError);
}

TEST(Restrictions, CutpointFreesNetsAndConstrainsThem) {
  Netlist nl = tiny_core_like();
  const Port* q = nl.find_output("q");
  const std::vector<NetId> qbits = q->bits;
  RestrictionResult r = restrict_isa_cutpoint(nl, qbits, isa::rv32_subset_named("rv32i"));
  EXPECT_EQ(r.cut_nets.size(), 32u);
  for (NetId n : qbits) EXPECT_EQ(nl.driver(n), kNoCell) << "cut net must be free";
  EXPECT_TRUE(env_satisfiable(nl, r.env, 3));
}

TEST(Restrictions, ConditionalAlignmentAssume) {
  // restrict_word_aligned adds "req -> addr[1:0] == 0" as an assume.
  Netlist nl;
  synth::Builder b(nl);
  auto req = b.input("req", 1);
  auto addr = b.input("addr", 2);
  nl.add_output("o", {b.and_(req[0], addr[0])});
  Environment env;
  restrict_word_aligned(nl, env, req[0], {addr[0], addr[1]});
  ASSERT_EQ(env.assumes.size(), 1u);
  BitSim sim(nl);
  const NetId a = env.assumes[0];
  auto check = [&](bool r, unsigned ad) {
    sim.set_input(req[0], r ? ~0ULL : 0);
    sim.set_input(addr[0], (ad & 1) ? ~0ULL : 0);
    sim.set_input(addr[1], (ad & 2) ? ~0ULL : 0);
    sim.eval();
    return sim.value(a) == ~0ULL;
  };
  EXPECT_TRUE(check(false, 3));   // no request: anything goes
  EXPECT_TRUE(check(true, 0));    // aligned request
  EXPECT_FALSE(check(true, 1));   // misaligned request violates
  EXPECT_FALSE(check(true, 2));
}

TEST(Restrictions, CutToZeroPinsNets) {
  Netlist nl;
  synth::Builder b(nl);
  auto a = b.input("a", 2);
  const NetId x = b.xor_(a[0], a[1]);
  const NetId y = b.or_(x, a[0]);
  nl.add_output("o", {y});
  RestrictionResult r;
  restrict_cut_to_zero(nl, r, {x});
  EXPECT_EQ(nl.driver(x), kNoCell);
  EXPECT_EQ(r.env.assumes.size(), 1u);
  EXPECT_EQ(r.env.drivers.size(), 1u);
  // Simulation: the driver ties the cut net low.
  BitSim sim(nl);
  Rng rng(3);
  drive_inputs(nl, r.env, sim, rng, r.cut_nets);
  sim.eval();
  EXPECT_EQ(sim.value(x), 0u);
  for (NetId asm_net : r.env.assumes) EXPECT_EQ(sim.value(asm_net), ~0ULL);
}

TEST(Restrictions, StimulusSatisfiesAssumesForAllRv32Subsets) {
  Netlist nl = tiny_core_like();
  for (const char* name : {"rv32imcz", "rv32imc", "rv32i", "rv32e", "rv32ec"}) {
    Netlist copy = nl;
    RestrictionResult r = restrict_isa_port(copy, "instr", isa::rv32_subset_named(name));
    BitSim sim(copy);
    Rng rng(17);
    for (int cyc = 0; cyc < 200; ++cyc) {
      drive_inputs(copy, r.env, sim, rng);
      sim.eval();
      for (NetId a : r.env.assumes) {
        ASSERT_EQ(sim.value(a), ~0ULL) << name << " cycle " << cyc;
      }
      sim.latch();
    }
  }
}

TEST(Restrictions, ThumbHalfwordMatcherAcceptsSampledStream) {
  Netlist nl;
  synth::Builder b(nl);
  auto half = b.input("half", 16);
  const auto subset = isa::thumb_subset_all();
  b.output("ok", {isa::build_thumb_halfword_matcher(b, half, subset)});
  BitSim sim(nl);
  Rng rng(5);
  std::uint32_t pend = 0;
  bool has = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint16_t hw = isa::sample_thumb_halfword(subset, rng, pend, has);
    sim.set_port_uniform(*nl.find_input("half"), hw);
    sim.eval();
    ASSERT_EQ(sim.read_port(*nl.find_output("ok"), 0), 1u) << std::hex << hw;
  }
}

TEST(Restrictions, ThumbInterestingMatcherRejectsWidePrefixes) {
  Netlist nl;
  synth::Builder b(nl);
  auto half = b.input("half", 16);
  b.output("ok", {isa::build_thumb_halfword_matcher(b, half, isa::thumb_subset_interesting())});
  BitSim sim(nl);
  for (std::uint32_t hw : {0xf000u /* bl first */, 0xf800u /* bl second-ish */,
                           0x4340u /* muls */, 0xbf20u /* wfe */}) {
    sim.set_port_uniform(*nl.find_input("half"), hw);
    sim.eval();
    EXPECT_EQ(sim.read_port(*nl.find_output("ok"), 0), 0u) << std::hex << hw;
  }
  // A plain adds must pass.
  sim.set_port_uniform(*nl.find_input("half"), 0x1840);
  sim.eval();
  EXPECT_EQ(sim.read_port(*nl.find_output("ok"), 0), 1u);
}

}  // namespace
}  // namespace pdat
