#include <gtest/gtest.h>

#include "cores/ridecore/ride_tb.h"
#include "cores/ridecore/ridecore.h"
#include "isa/rv32_assembler.h"
#include "isa/rv32_isa.h"
#include "netlist/check.h"

namespace pdat::cores {
namespace {

const Netlist& ride() {
  static const RideCore core = build_ridecore();
  return core.netlist;
}

std::string cosim(const std::string& asm_text) {
  return ride_cosim_against_iss(ride(), isa::assemble_rv32(asm_text).words);
}

TEST(RideCore, BuildsAtPaperScale) {
  EXPECT_TRUE(check_netlist(ride()).empty());
  // Paper Table II: ~100k gates, an order of magnitude larger than Ibex.
  EXPECT_GT(ride().gate_count(), 50000u);
  EXPECT_GT(ride().num_flops(), 6000u);
}

TEST(RideCosim, DualIssueArithmetic) {
  EXPECT_EQ(cosim(R"(
      li a0, 7
      li a1, 9
      add a2, a0, a1
      xor a3, a0, a1
      sll a4, a1, a0
      sltu a5, a0, a1
      sub a6, a0, a1
      srai a7, a6, 3
      ebreak
  )"), "");
}

TEST(RideCosim, DependentPairBypasses) {
  EXPECT_EQ(cosim(R"(
      li a0, 5
      addi a1, a0, 1     # depends on previous slot
      add a2, a1, a1
      addi a2, a2, 3
      ebreak
  )"), "");
}

TEST(RideCosim, LoadsStoresShareThePort) {
  EXPECT_EQ(cosim(R"(
      li t0, 0x800
      li t1, 0x11223344
      sw t1, 0(t0)
      lw a0, 0(t0)       # mem-after-mem in one pair: split issue
      sb t1, 5(t0)
      lbu a1, 5(t0)
      sh t1, 6(t0)
      lh a2, 6(t0)
      lb a3, 3(t0)
      ebreak
  )"), "");
}

TEST(RideCosim, LoadUseInSamePair) {
  EXPECT_EQ(cosim(R"(
      li t0, 0x800
      li t1, 42
      sw t1, 0(t0)
      lw a0, 0(t0)
      addi a1, a0, 1     # depends on the load: pair must split
      ebreak
  )"), "");
}

TEST(RideCosim, BranchesAndPrediction) {
  EXPECT_EQ(cosim(R"(
      li a0, 0
      li t0, 0
    loop:
      addi t0, t0, 1
      add a0, a0, t0
      li t1, 50
      blt t0, t1, loop   # trains the gshare predictor
      call fn
      addi a0, a0, 1
      ebreak
    fn:
      addi a0, a0, 10
      ret
  )"), "");
}

TEST(RideCosim, MulVariants) {
  EXPECT_EQ(cosim(R"(
      li a0, -7
      li a1, 3
      mul a2, a0, a1
      mulh a3, a0, a1
      mulhu a4, a0, a1
      mulhsu a5, a0, a1
      mul a6, a1, a1
      mul a7, a6, a6     # dependent muls
      ebreak
  )"), "");
}

TEST(RideCosim, DivIsIllegalLikeRidecore) {
  const auto prog = isa::assemble_rv32("li a0, 6\nli a1, 2\ndiv a2, a0, a1\nebreak\n");
  RideTestbench tb(ride());
  tb.load_words(0, prog.words);
  tb.reset();
  EXPECT_LT(tb.run(1000), 1000u) << "div must halt the core (not implemented)";
}

TEST(RideCosim, RegisterPressureExercisesRename) {
  // 200 writes so physical registers recycle through the free list and ROB.
  std::string text;
  for (int i = 0; i < 200; ++i) {
    const int rd = 1 + (i % 30);
    text += "addi x" + std::to_string(rd) + ", x" + std::to_string(1 + ((i + 7) % 30)) + ", " +
            std::to_string(i % 100) + "\n";
  }
  text += "ebreak\n";
  EXPECT_EQ(cosim(text), "");
}

TEST(RideCosim, WawInOnePair) {
  EXPECT_EQ(cosim(R"(
      li a0, 1
      li a0, 2           # same destination in one fetch pair
      addi a1, a0, 5
      ebreak
  )"), "");
}

TEST(RideCore, DualIssueIsFasterThanSplitIssue) {
  // Independent ALU ops should sustain close to 2 IPC.
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += std::string("addi x") + std::to_string(5 + (i % 2)) + ", x0, " +
            std::to_string(i % 50) + "\n";
  }
  text += "ebreak\n";
  const auto prog = isa::assemble_rv32(text);
  RideTestbench tb(ride());
  tb.load_words(0, prog.words);
  tb.reset();
  tb.run(100000);
  EXPECT_GE(tb.retired(), 100u);
  EXPECT_LT(tb.cycles(), tb.retired() * 3 / 4) << "IPC must exceed 1.3 on independent ALU ops";
}

class RideRandomPrograms : public ::testing::TestWithParam<int> {};

TEST_P(RideRandomPrograms, StraightLineMatchesIss) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 33331);
  std::vector<std::uint32_t> words;
  const char* ops[] = {"add", "sub", "sll", "slt", "sltu", "xor", "srl",  "sra",
                       "or",  "and", "addi", "slti", "sltiu", "xori", "ori", "andi",
                       "slli", "srli", "srai", "lui", "auipc", "mul", "mulh", "mulhsu",
                       "mulhu"};
  for (int i = 0; i < 80; ++i) {
    const auto& spec = isa::rv32_instr(ops[rng.below(std::size(ops))]);
    isa::RvFields f;
    f.rd = static_cast<unsigned>(rng.below(32));
    f.rs1 = static_cast<unsigned>(rng.below(32));
    f.rs2 = static_cast<unsigned>(rng.below(32));
    f.imm = static_cast<std::int32_t>(rng.next() & 0xfff) - 2048;
    if (spec.fmt == isa::RvFormat::U) f.imm = static_cast<std::int32_t>(rng.next() & 0xfffff000);
    f.shamt = static_cast<unsigned>(rng.below(32));
    words.push_back(isa::rv32_encode(spec, f));
  }
  words.push_back(isa::rv32_instr("ebreak").match);
  EXPECT_EQ(ride_cosim_against_iss(ride(), words), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RideRandomPrograms, ::testing::Range(1, 9));

}  // namespace
}  // namespace pdat::cores
