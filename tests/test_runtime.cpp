// Supervised proof-job runtime: journal format + corruption recovery,
// supervisor retry/escalation/crash containment, checkpoint/resume, and the
// determinism contract (worker count and resume point never change results).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "cores/cm0/cm0_core.h"
#include "formal/bmc.h"
#include "formal/induction.h"
#include "isa/thumb_subsets.h"
#include "netlist/verilog.h"
#include "opt/optimizer.h"
#include "pdat/errors.h"
#include "pdat/pipeline.h"
#include "runtime/checkpoint.h"
#include "runtime/journal.h"
#include "runtime/supervisor.h"
#include "synth/builder.h"
#include "test_util.h"
#include "util/failpoint.h"

namespace pdat {
namespace {

namespace rt = pdat::runtime;

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("pdat_runtime_" + name)).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- journal ------------------------------------------------------------------

TEST(Journal, RoundTripAndValidBytes) {
  const std::string path = tmp_path("roundtrip.jrn");
  {
    auto w = rt::JournalWriter::create(path);
    w.append(1, "alpha");
    w.append(2, std::string("\x00\xff\x7f", 3));
    w.append(7, "");
  }
  std::uint64_t valid = 0;
  const auto recs = rt::read_journal(path, &valid);
  ASSERT_TRUE(recs.has_value());
  ASSERT_EQ(recs->size(), 3u);
  EXPECT_EQ((*recs)[0].type, 1u);
  EXPECT_EQ((*recs)[0].payload, "alpha");
  EXPECT_EQ((*recs)[1].payload.size(), 3u);
  EXPECT_EQ((*recs)[2].type, 7u);
  EXPECT_EQ(valid, std::filesystem::file_size(path));
  std::remove(path.c_str());
}

TEST(Journal, TruncatedTailDropsOnlyLastRecord) {
  const std::string path = tmp_path("torn.jrn");
  {
    auto w = rt::JournalWriter::create(path);
    w.append(1, "first");
    w.append(2, "second");
  }
  // Simulate a crash mid-write: chop a few bytes off the last record.
  const std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 3));

  std::uint64_t valid = 0;
  const auto recs = rt::read_journal(path, &valid);
  ASSERT_TRUE(recs.has_value());
  ASSERT_EQ(recs->size(), 1u) << "torn tail must cost exactly the torn record";
  EXPECT_EQ((*recs)[0].payload, "first");

  // Appending after the crash truncates the torn tail, then continues.
  {
    auto w = rt::JournalWriter::append_after_valid_prefix(path);
    w.append(3, "third");
  }
  const auto recs2 = rt::read_journal(path);
  ASSERT_TRUE(recs2.has_value());
  ASSERT_EQ(recs2->size(), 2u);
  EXPECT_EQ((*recs2)[0].payload, "first");
  EXPECT_EQ((*recs2)[1].payload, "third");
  std::remove(path.c_str());
}

TEST(Journal, FlippedChecksumByteStopsReplayAtPreviousRecord) {
  const std::string path = tmp_path("flip.jrn");
  {
    auto w = rt::JournalWriter::create(path);
    w.append(1, "first");
    w.append(2, "second");
  }
  // Flip one byte inside the last record's payload.
  std::string bytes = slurp(path);
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x40);
  spit(path, bytes);

  const auto recs = rt::read_journal(path);
  ASSERT_TRUE(recs.has_value());
  ASSERT_EQ(recs->size(), 1u) << "a corrupt record must not replay";
  EXPECT_EQ((*recs)[0].payload, "first");
  std::remove(path.c_str());
}

TEST(Journal, MissingEmptyOrAlienFilesRejected) {
  EXPECT_FALSE(rt::read_journal(tmp_path("does_not_exist.jrn")).has_value());

  const std::string path = tmp_path("alien.jrn");
  spit(path, "");
  EXPECT_FALSE(rt::read_journal(path).has_value()) << "zero-byte file has no header";
  spit(path, "not a journal at all, definitely");
  EXPECT_FALSE(rt::read_journal(path).has_value()) << "bad magic must be rejected";
  EXPECT_THROW(rt::JournalWriter::append_after_valid_prefix(path), PdatError);
  std::remove(path.c_str());
}

TEST(Journal, WireHelpersThrowPastEnd) {
  std::string buf;
  rt::put_u32(buf, 0xdeadbeef);
  std::size_t pos = 0;
  EXPECT_EQ(rt::get_u32(buf, pos), 0xdeadbeefu);
  EXPECT_THROW(rt::get_u32(buf, pos), PdatError);
  EXPECT_THROW(rt::get_u64(buf, pos), PdatError);
}

// --- journal durability under injected faults ---------------------------------

TEST(JournalChaos, CreateEnospcThrowsAndLeavesNoUsableFile) {
  const std::string path = tmp_path("enospc_create.jrn");
  {
    util::ScopedFailpoint fp("journal.create", "enospc:1");
    EXPECT_THROW(rt::JournalWriter::create(path), PdatError);
  }
  // The partial artifact (magic only, no version) must read as headerless.
  EXPECT_FALSE(rt::read_journal(path).has_value());
  std::remove(path.c_str());
}

TEST(JournalChaos, AppendEnospcThrowsJournalErrorAndKeepsTheValidPrefix) {
  const std::string path = tmp_path("enospc_append.jrn");
  {
    auto w = rt::JournalWriter::create(path);
    w.append(1, "first");
    util::ScopedFailpoint fp("journal.append", "enospc:1");
    try {
      w.append(2, "second-record-payload");
      FAIL() << "append must throw on injected ENOSPC";
    } catch (const PdatError& e) {
      EXPECT_EQ(std::string(e.what()).rfind("journal:", 0), 0u)
          << "the pipeline keys fatal handling off the 'journal:' prefix";
    }
  }
  // Longest-valid-prefix recovery: the torn record is dropped, nothing else.
  const auto recs = rt::read_journal(path);
  ASSERT_TRUE(recs.has_value());
  ASSERT_EQ(recs->size(), 1u);
  EXPECT_EQ((*recs)[0].payload, "first");
  // A later run truncates the torn tail and appends cleanly.
  {
    auto w = rt::JournalWriter::append_after_valid_prefix(path);
    w.append(3, "third");
  }
  const auto recs2 = rt::read_journal(path);
  ASSERT_TRUE(recs2.has_value());
  ASSERT_EQ(recs2->size(), 2u);
  EXPECT_EQ((*recs2)[1].payload, "third");
  std::remove(path.c_str());
}

// --- checkpoint records -------------------------------------------------------

rt::ProofRoundRecord sample_round(std::int32_t round, std::size_t n) {
  rt::ProofRoundRecord r;
  r.round = round;
  r.alive.assign(n, false);
  for (std::size_t i = 0; i < n; i += 3) r.alive[i] = true;
  r.counters.sat_calls = 42;
  r.counters.cex_kills = 7;
  r.counters.budget_kills = 1;
  r.counters.rounds = static_cast<std::uint64_t>(round + 1);
  r.counters.after_base = n;
  return r;
}

TEST(Checkpoint, ResumeReturnsLastCompleteRound) {
  const std::string path = tmp_path("ckpt.jrn");
  const rt::ProofJournalHeader hdr{0x1234abcdULL, 10};
  {
    auto w = rt::JournalWriter::create(path);
    w.append(rt::kProofRecHeader, rt::encode_proof_header(hdr));
    w.append(rt::kProofRecRound, rt::encode_proof_round(sample_round(rt::kBaseRound, 10)));
    w.append(rt::kProofRecRound, rt::encode_proof_round(sample_round(0, 10)));
    w.append(rt::kProofRecRound, rt::encode_proof_round(sample_round(1, 10)));
  }
  const auto rs = rt::load_proof_resume(path, hdr);
  ASSERT_TRUE(rs.has_value());
  EXPECT_EQ(rs->last.round, 1);
  EXPECT_FALSE(rs->finished);
  EXPECT_EQ(rs->last.alive.size(), 10u);
  EXPECT_EQ(rs->last.counters.sat_calls, 42u);

  // A final record marks the proof complete.
  {
    auto w = rt::JournalWriter::append_after_valid_prefix(path);
    w.append(rt::kProofRecFinal, rt::encode_proof_round(sample_round(2, 10)));
  }
  const auto rs2 = rt::load_proof_resume(path, hdr);
  ASSERT_TRUE(rs2.has_value());
  EXPECT_TRUE(rs2->finished);
  EXPECT_EQ(rs2->last.round, 2);
  std::remove(path.c_str());
}

TEST(Checkpoint, ConfigurationErrorsNeverResumeSilently) {
  const rt::ProofJournalHeader hdr{99, 4};

  // Missing journal.
  EXPECT_THROW(rt::load_proof_resume(tmp_path("missing.jrn"), hdr), PdatError);

  // Journal with no header record.
  const std::string path = tmp_path("headerless.jrn");
  {
    auto w = rt::JournalWriter::create(path);
    w.append(rt::kProofRecRound, rt::encode_proof_round(sample_round(0, 4)));
  }
  EXPECT_THROW(rt::load_proof_resume(path, hdr), PdatError);

  // Fingerprint mismatch (journal from a different proof problem).
  {
    auto w = rt::JournalWriter::create(path);
    w.append(rt::kProofRecHeader, rt::encode_proof_header({98, 4}));
    w.append(rt::kProofRecRound, rt::encode_proof_round(sample_round(0, 4)));
  }
  EXPECT_THROW(rt::load_proof_resume(path, hdr), PdatError);

  // Candidate-count mismatch.
  {
    auto w = rt::JournalWriter::create(path);
    w.append(rt::kProofRecHeader, rt::encode_proof_header({99, 5}));
  }
  EXPECT_THROW(rt::load_proof_resume(path, hdr), PdatError);
  std::remove(path.c_str());
}

TEST(Checkpoint, HeaderOnlyJournalResumesFromScratch) {
  const std::string path = tmp_path("headeronly.jrn");
  const rt::ProofJournalHeader hdr{5, 3};
  {
    auto w = rt::JournalWriter::create(path);
    w.append(rt::kProofRecHeader, rt::encode_proof_header(hdr));
  }
  EXPECT_FALSE(rt::load_proof_resume(path, hdr).has_value());
  std::remove(path.c_str());
}

TEST(Checkpoint, ReplayFailpointFailsTheResumeLoudly) {
  const std::string path = tmp_path("replay_fp.jrn");
  const rt::ProofJournalHeader hdr{1, 2};
  {
    auto w = rt::JournalWriter::create(path);
    w.append(rt::kProofRecHeader, rt::encode_proof_header(hdr));
  }
  util::ScopedFailpoint fp("checkpoint.replay", "enospc:1");
  EXPECT_THROW(rt::load_proof_resume(path, hdr), PdatError);
  // The trigger is consumed: the retry succeeds against the same file.
  EXPECT_FALSE(rt::load_proof_resume(path, hdr).has_value());
  std::remove(path.c_str());
}

TEST(Checkpoint, TornTailCostsAtMostOneRound) {
  const std::string path = tmp_path("ckpt_torn.jrn");
  const rt::ProofJournalHeader hdr{77, 6};
  {
    auto w = rt::JournalWriter::create(path);
    w.append(rt::kProofRecHeader, rt::encode_proof_header(hdr));
    w.append(rt::kProofRecRound, rt::encode_proof_round(sample_round(rt::kBaseRound, 6)));
    w.append(rt::kProofRecRound, rt::encode_proof_round(sample_round(0, 6)));
  }
  const std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 5));
  const auto rs = rt::load_proof_resume(path, hdr);
  ASSERT_TRUE(rs.has_value());
  EXPECT_EQ(rs->last.round, rt::kBaseRound) << "the torn round must not replay";
  std::remove(path.c_str());
}

// --- supervisor ---------------------------------------------------------------

TEST(Supervisor, RunsEveryJobOnAnyThreadCount) {
  for (int threads : {1, 4}) {
    rt::SupervisorOptions opt;
    opt.threads = threads;
    rt::Supervisor sup(opt);
    std::vector<int> ran(17, 0);
    const auto reports = sup.run(ran.size(), [&](std::size_t j, int, const rt::JobBudget&) {
      ran[j] += 1;
      return rt::JobStatus::Done;
    });
    ASSERT_EQ(reports.size(), 17u);
    for (std::size_t j = 0; j < ran.size(); ++j) {
      EXPECT_EQ(ran[j], 1) << "job " << j << " threads " << threads;
      EXPECT_TRUE(reports[j].completed);
    }
  }
}

TEST(Supervisor, RetryEscalatesBudgetThenDrops) {
  rt::SupervisorOptions opt;
  opt.threads = 1;
  opt.max_attempts = 3;
  opt.escalation = 4.0;
  opt.initial.conflicts = 10;
  rt::Supervisor sup(opt);
  std::vector<std::int64_t> budgets;
  const auto reports = sup.run(1, [&](std::size_t, int, const rt::JobBudget& b) {
    budgets.push_back(b.conflicts);
    return rt::JobStatus::Retry;  // never finishes
  });
  ASSERT_EQ(budgets.size(), 3u);
  EXPECT_EQ(budgets[0], 10);
  EXPECT_GT(budgets[1], budgets[0]);
  EXPECT_GT(budgets[2], budgets[1]);
  EXPECT_TRUE(reports[0].dropped);
  EXPECT_FALSE(reports[0].completed);
  EXPECT_EQ(sup.stats().retries, 2u);
  EXPECT_EQ(sup.stats().drops, 1u);
}

TEST(Supervisor, CrashIsContainedRetriedAndRecorded) {
  rt::SupervisorOptions opt;
  opt.threads = 2;
  opt.max_attempts = 2;
  rt::Supervisor sup(opt);
  // Job 0 crashes once then succeeds; job 1 always crashes; job 2 is clean.
  const auto reports = sup.run(3, [&](std::size_t j, int attempt, const rt::JobBudget&) {
    if (j == 0 && attempt == 1) throw PdatError("transient failure");
    if (j == 1) throw std::runtime_error("pathological query");
    return rt::JobStatus::Done;
  });
  EXPECT_TRUE(reports[0].completed);
  EXPECT_TRUE(reports[0].crashed);
  EXPECT_FALSE(reports[1].completed);
  EXPECT_TRUE(reports[1].dropped);
  EXPECT_EQ(reports[1].last_error, "pathological query");
  EXPECT_TRUE(reports[2].completed);
  EXPECT_FALSE(reports[2].crashed);
  EXPECT_EQ(sup.stats().crashes, 3u);
  EXPECT_EQ(sup.stats().drops, 1u);
}

TEST(Supervisor, CertificationErrorIsNeverContained) {
  // A failed certificate means the solver is unsound — containment (retry,
  // drop-and-continue) would re-trust it, so run() must rethrow instead.
  for (const int threads : {1, 4}) {
    rt::SupervisorOptions opt;
    opt.threads = threads;
    opt.max_attempts = 3;
    rt::Supervisor sup(opt);
    std::atomic<int> attempts{0};
    EXPECT_THROW(sup.run(8,
                         [&](std::size_t j, int, const rt::JobBudget&) {
                           attempts.fetch_add(1);
                           if (j == 3) throw CertificationError("UNSAT certificate rejected");
                           return rt::JobStatus::Done;
                         }),
                 CertificationError)
        << "threads=" << threads;
    EXPECT_TRUE(sup.cancelled().load()) << "threads=" << threads;
    EXPECT_LE(attempts.load(), 8) << "the failure must cancel, never retry";
  }
}

TEST(Supervisor, InterruptFlagAbortsLikeADeadline) {
  rt::SupervisorOptions opt;
  opt.threads = 1;
  std::atomic<bool> interrupt{true};  // tripped before the run starts
  opt.interrupt = &interrupt;
  rt::Supervisor sup(opt);
  int executed = 0;
  const auto reports = sup.run(4, [&](std::size_t, int, const rt::JobBudget&) {
    ++executed;
    return rt::JobStatus::Done;
  });
  EXPECT_EQ(executed, 0) << "no job may start once the interrupt is set";
  for (const auto& r : reports) EXPECT_TRUE(r.aborted);
  EXPECT_TRUE(sup.cancelled().load());
}

TEST(Supervisor, ExpiredDeadlineAbortsJobsAndSetsCancelFlag) {
  rt::SupervisorOptions opt;
  opt.threads = 1;
  opt.has_deadline = true;
  opt.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  rt::Supervisor sup(opt);
  int executed = 0;
  const auto reports = sup.run(4, [&](std::size_t, int, const rt::JobBudget&) {
    ++executed;
    return rt::JobStatus::Done;
  });
  EXPECT_EQ(executed, 0) << "no job may start past the deadline";
  for (const auto& r : reports) EXPECT_TRUE(r.aborted);
  EXPECT_TRUE(sup.cancelled().load());
  EXPECT_EQ(sup.stats().aborted, 4u);
}

// --- induction engine determinism + resume ------------------------------------

GateProperty const0(NetId n) {
  GateProperty p;
  p.kind = PropKind::Const0;
  p.target = n;
  return p;
}

GateProperty const1(NetId n) {
  GateProperty p;
  p.kind = PropKind::Const1;
  p.target = n;
  return p;
}

std::vector<GateProperty> gate_const_candidates(const Netlist& nl) {
  std::vector<GateProperty> cands;
  for (CellId id : nl.live_cells()) {
    const auto& c = nl.cell(id);
    if (cell_is_const(c.kind)) continue;
    cands.push_back(const0(c.out));
    cands.push_back(const1(c.out));
  }
  return cands;
}

std::string describe_all(const std::vector<GateProperty>& props) {
  std::string s;
  for (const auto& p : props) s += p.describe() + "\n";
  return s;
}

TEST(InductionRuntime, ThreadCountDoesNotChangeOutcome) {
  const Netlist nl = test::random_netlist(7, 8, 160, 14, 6);
  const Environment env;
  const auto cands = gate_const_candidates(nl);

  InductionOptions base;
  base.batch_size = 8;  // several jobs per round

  InductionStats st1, st8;
  InductionOptions o1 = base, o8 = base;
  o1.threads = 1;
  o8.threads = 8;
  const auto p1 = prove_invariants(nl, env, cands, o1, &st1);
  const auto p8 = prove_invariants(nl, env, cands, o8, &st8);

  EXPECT_EQ(describe_all(p1), describe_all(p8));
  EXPECT_EQ(st1.sat_calls, st8.sat_calls);
  EXPECT_EQ(st1.cex_kills, st8.cex_kills);
  EXPECT_EQ(st1.budget_kills, st8.budget_kills);
  EXPECT_EQ(st1.after_base, st8.after_base);
  EXPECT_EQ(st1.rounds, st8.rounds);
}

TEST(InductionRuntime, ResumeMatchesUninterruptedRun) {
  const Netlist nl = test::random_netlist(11, 8, 160, 14, 6);
  const Environment env;
  const auto cands = gate_const_candidates(nl);

  const std::string full = tmp_path("proof_full.jrn");
  const std::string crashed = tmp_path("proof_crashed.jrn");

  InductionOptions opt;
  opt.batch_size = 8;
  opt.journal_path = full;
  InductionStats st_full;
  const auto proven_full = prove_invariants(nl, env, cands, opt, &st_full);

  // Simulate a SIGKILL after the base case: keep only the journal's header
  // and base-round records, exactly what a crash mid-round leaves behind.
  const auto recs = rt::read_journal(full);
  ASSERT_TRUE(recs.has_value());
  ASSERT_GE(recs->size(), 2u);
  {
    auto w = rt::JournalWriter::create(crashed);
    w.append((*recs)[0].type, (*recs)[0].payload);
    w.append((*recs)[1].type, (*recs)[1].payload);
  }

  InductionOptions ropt = opt;
  ropt.journal_path = crashed;
  ropt.resume_from = crashed;
  ropt.threads = 8;  // resume on a different worker count, same result
  InductionStats st_res;
  const auto proven_res = prove_invariants(nl, env, cands, ropt, &st_res);

  EXPECT_EQ(st_res.resumed_from_round, rt::kBaseRound);
  EXPECT_EQ(describe_all(proven_full), describe_all(proven_res));
  EXPECT_EQ(st_full.sat_calls, st_res.sat_calls);
  EXPECT_EQ(st_full.cex_kills, st_res.cex_kills);
  EXPECT_EQ(st_full.after_base, st_res.after_base);
  EXPECT_EQ(st_full.rounds, st_res.rounds);
  EXPECT_EQ(st_full.proven, st_res.proven);

  // Resuming a finished journal short-circuits the whole proof.
  InductionOptions fin = opt;
  fin.journal_path.clear();
  fin.resume_from = full;
  InductionStats st_fin;
  const auto proven_fin = prove_invariants(nl, env, cands, fin, &st_fin);
  EXPECT_EQ(describe_all(proven_full), describe_all(proven_fin));
  EXPECT_EQ(st_fin.sat_calls, st_full.sat_calls);
  std::remove(full.c_str());
  std::remove(crashed.c_str());
}

TEST(InductionRuntime, ResumeRejectsJournalFromDifferentProblem) {
  const Netlist nl = test::random_netlist(13, 6, 80, 8, 4);
  const Environment env;
  const auto cands = gate_const_candidates(nl);
  const std::string path = tmp_path("proof_mismatch.jrn");

  InductionOptions opt;
  opt.journal_path = path;
  prove_invariants(nl, env, cands, opt);

  // Same journal, different conflict budget: verdict-affecting, so the
  // fingerprint must reject the resume.
  InductionOptions other;
  other.resume_from = path;
  other.conflict_budget = 12345;
  EXPECT_THROW(prove_invariants(nl, env, cands, other), PdatError);
  std::remove(path.c_str());
}

TEST(InductionRuntime, BudgetDropsAreConservativeAndAccounted) {
  const Netlist nl = test::random_netlist(99, 8, 200, 16, 6);
  const Environment env;
  const auto cands = gate_const_candidates(nl);

  InductionOptions opt;
  opt.conflict_budget = 1;
  opt.cex_sim_cycles = 0;  // force the SAT-side path
  opt.max_job_attempts = 1;
  opt.batch_size = 16;
  InductionStats st;
  const auto proven = prove_invariants(nl, env, cands, opt, &st);
  EXPECT_GT(st.budget_kills, 0u);
  EXPECT_GT(st.job_drops, 0u);
  // Whatever survived the starved run must be genuinely invariant.
  for (const auto& p : proven) {
    const BmcResult r = bmc_check(nl, env, p, 6);
    EXPECT_FALSE(r.violated) << p.describe() << " violated at frame " << r.violation_frame;
  }
}

// --- pipeline-level wiring ----------------------------------------------------

TEST(PdatPipeline, BadResumeJournalIsAConfigErrorEvenWhenNotStrict) {
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto r = b.reg_decl(4, 0);
  b.connect(r, b.mux(en[0], r.q, b.add_const(r.q, 1)));
  b.output("q", r.q);
  const NetId not_en = b.not_(en[0]);
  const NetId en_net = en[0];

  PdatOptions opt;
  opt.strict = false;
  opt.resume_from = tmp_path("no_such_journal.jrn");
  EXPECT_THROW(run_pdat(nl,
                        [&](Netlist&) {
                          RestrictionResult rr;
                          rr.env.add_assume(not_en);
                          rr.env.drivers.push_back(std::make_shared<ConstantDriver>(
                              std::vector<NetId>{en_net}, false));
                          return rr;
                        },
                        opt),
               StageError);
}

TEST(PdatPipeline, JournalWriteFailureIsFatalEvenWhenNotStrict) {
  // A checkpoint append that fails to persist would turn a later --resume
  // into a replay of stale state, so the pipeline must stop — degrading to
  // "no journal" would silently break the crash-tolerance contract.
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto r = b.reg_decl(4, 0);
  b.connect(r, b.mux(en[0], r.q, b.add_const(r.q, 1)));
  b.output("q", r.q);
  const NetId not_en = b.not_(en[0]);
  const NetId en_net = en[0];

  const std::string path = tmp_path("enospc_pipeline.jrn");
  PdatOptions opt;
  opt.strict = false;
  opt.checkpoint_journal = path;
  util::ScopedFailpoint fp("journal.append", "enospc:1");
  EXPECT_THROW(run_pdat(nl,
                        [&](Netlist&) {
                          RestrictionResult rr;
                          rr.env.add_assume(not_en);
                          rr.env.drivers.push_back(std::make_shared<ConstantDriver>(
                              std::vector<NetId>{en_net}, false));
                          return rr;
                        },
                        opt),
               StageError);
  std::remove(path.c_str());
}

TEST(PdatPipeline, JournalAndResumeForwardIntoInduction) {
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto r = b.reg_decl(4, 0);
  b.connect(r, b.mux(en[0], r.q, b.add_const(r.q, 1)));
  b.output("q", r.q);
  const NetId not_en = b.not_(en[0]);
  const NetId en_net = en[0];
  const auto restrict_fn = [&](Netlist&) {
    RestrictionResult rr;
    rr.env.add_assume(not_en);
    rr.env.drivers.push_back(
        std::make_shared<ConstantDriver>(std::vector<NetId>{en_net}, false));
    return rr;
  };

  const std::string path = tmp_path("pipeline.jrn");
  PdatOptions opt;
  opt.checkpoint_journal = path;
  const PdatResult a = run_pdat(nl, restrict_fn, opt);
  ASSERT_TRUE(rt::read_journal(path).has_value()) << "journal must be written";

  PdatOptions ropt;
  ropt.resume_from = path;
  const PdatResult b2 = run_pdat(nl, restrict_fn, ropt);
  EXPECT_GE(b2.induction.resumed_from_round, rt::kBaseRound);
  EXPECT_EQ(a.proven, b2.proven);
  EXPECT_EQ(a.induction.sat_calls, b2.induction.sat_calls);
  std::remove(path.c_str());
}

// --- the determinism regression the whole design hangs on ---------------------
//
// On the CM0 example (paper §VII-B): one worker, eight workers, and a
// mid-run crash-and-resume must all produce the identical proved set and
// the identical final netlist.

TEST(Cm0Determinism, ThreadsAndMidRunResumeAreBitExact) {
  cores::Cm0Core core = cores::build_cm0();
  opt::optimize(core.netlist);
  const isa::ThumbSubset subset = isa::thumb_subset_interesting();

  const auto restrict_fn = [&](Netlist& a) {
    const Port* port = a.find_input("imem_rdata");
    RestrictionResult rr;
    synth::Builder b(a);
    rr.env.add_assume(isa::build_thumb_halfword_matcher(b, port->bits, subset));
    struct Driver final : StimulusDriver {
      std::vector<NetId> bits;
      isa::ThumbSubset s;
      std::uint32_t pend[64] = {};
      bool has[64] = {};
      Driver(std::vector<NetId> n, isa::ThumbSubset ss) : bits(std::move(n)), s(std::move(ss)) {}
      void drive(BitSim& sim, Rng& rng) override {
        std::uint64_t slots[64];
        for (int i = 0; i < 64; ++i) {
          slots[i] = isa::sample_thumb_halfword(s, rng, pend[i], has[i]);
        }
        Port tmp;
        tmp.bits = bits;
        sim.set_port_per_slot(tmp, slots);
      }
      std::vector<NetId> owned_nets() const override { return bits; }
      std::unique_ptr<StimulusDriver> clone() const override {
        return std::make_unique<Driver>(*this);
      }
    };
    rr.env.drivers.push_back(std::make_shared<Driver>(port->bits, subset));
    return rr;
  };

  const std::string journal = tmp_path("cm0_proof.jrn");
  const std::string crashed = tmp_path("cm0_crashed.jrn");

  PdatOptions o1;
  o1.induction.threads = 1;
  o1.checkpoint_journal = journal;
  const PdatResult r1 = run_pdat(core.netlist, restrict_fn, o1);
  EXPECT_GT(r1.proven, 0u);

  PdatOptions o8;
  o8.induction.threads = 8;
  const PdatResult r8 = run_pdat(core.netlist, restrict_fn, o8);

  EXPECT_EQ(r1.proven, r8.proven);
  EXPECT_EQ(r1.induction.sat_calls, r8.induction.sat_calls);
  EXPECT_EQ(r1.gates_after, r8.gates_after);
  EXPECT_EQ(to_verilog(r1.transformed, "m"), to_verilog(r8.transformed, "m"));

  // Crash mid-run: keep only the header and base-case checkpoint, resume on
  // eight workers, and demand the identical final netlist.
  const auto recs = rt::read_journal(journal);
  ASSERT_TRUE(recs.has_value());
  ASSERT_GE(recs->size(), 2u);
  {
    auto w = rt::JournalWriter::create(crashed);
    w.append((*recs)[0].type, (*recs)[0].payload);
    w.append((*recs)[1].type, (*recs)[1].payload);
  }
  PdatOptions ores;
  ores.induction.threads = 8;
  ores.checkpoint_journal = crashed;
  ores.resume_from = crashed;
  const PdatResult rres = run_pdat(core.netlist, restrict_fn, ores);

  EXPECT_EQ(rres.induction.resumed_from_round, rt::kBaseRound);
  EXPECT_EQ(r1.proven, rres.proven);
  EXPECT_EQ(r1.induction.sat_calls, rres.induction.sat_calls);
  EXPECT_EQ(to_verilog(r1.transformed, "m"), to_verilog(rres.transformed, "m"));
  std::remove(journal.c_str());
  std::remove(crashed.c_str());
}

TEST(StageErrorFormatting, CarriesStageNameAndElapsedTime) {
  const StageError plain(PdatStage::Induction, "boom");
  EXPECT_EQ(std::string(plain.what()), "PDAT[induction]: boom");
  EXPECT_LT(plain.elapsed_seconds(), 0);

  const StageError timed(PdatStage::Resynthesis, "boom", 12.5);
  EXPECT_EQ(std::string(timed.what()), "PDAT[resynthesis @12.50s]: boom");
  EXPECT_DOUBLE_EQ(timed.elapsed_seconds(), 12.5);

  const StageTimeoutError to(PdatStage::Validate, 3.25, 2.0);
  EXPECT_NE(std::string(to.what()).find("@3.25s"), std::string::npos);
  EXPECT_DOUBLE_EQ(to.deadline_seconds(), 2.0);
}

}  // namespace
}  // namespace pdat
