#include <gtest/gtest.h>

#include "sat/solver.h"

namespace pdat::sat {
namespace {

TEST(Sat, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(mk_lit(a));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Sat, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(mk_lit(a));
  s.add_clause(~mk_lit(a));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Sat, EmptyProblemIsSat) {
  Solver s;
  s.new_var();
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Sat, ImplicationChainPropagates) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 50; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 50; ++i) s.add_clause(~mk_lit(v[i]), mk_lit(v[i + 1]));
  s.add_clause(mk_lit(v[0]));
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(s.model_value(v[i]));
}

TEST(Sat, XorChainParity) {
  // x0 ^ x1 ^ ... ^ x7 = 1 encoded pairwise; solution must have odd parity.
  Solver s;
  std::vector<Var> x;
  for (int i = 0; i < 8; ++i) x.push_back(s.new_var());
  std::vector<Var> acc{x[0]};
  for (int i = 1; i < 8; ++i) {
    const Var t = s.new_var();
    const Lit a = mk_lit(acc.back()), b = mk_lit(x[i]), o = mk_lit(t);
    s.add_clause(~o, a, b);
    s.add_clause(~o, ~a, ~b);
    s.add_clause(o, ~a, b);
    s.add_clause(o, a, ~b);
    acc.push_back(t);
  }
  s.add_clause(mk_lit(acc.back()));
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  int parity = 0;
  for (int i = 0; i < 8; ++i) parity ^= s.model_value(x[i]) ? 1 : 0;
  EXPECT_EQ(parity, 1);
}

// Pigeonhole principle: n+1 pigeons in n holes is UNSAT and needs real
// conflict analysis to close.
TEST(Sat, Pigeonhole4) {
  Solver s;
  const int holes = 4, pigeons = 5;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(mk_lit(p[i][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int i = 0; i < pigeons; ++i) {
      for (int j = i + 1; j < pigeons; ++j) {
        s.add_clause(~mk_lit(p[i][h]), ~mk_lit(p[j][h]));
      }
    }
  }
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  EXPECT_GT(s.num_conflicts(), 0u);
}

TEST(Sat, AssumptionsSatisfiableSubset) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(~mk_lit(a), ~mk_lit(b));  // not both
  EXPECT_EQ(s.solve({mk_lit(a)}), SolveResult::Sat);
  EXPECT_EQ(s.solve({mk_lit(b)}), SolveResult::Sat);
  EXPECT_EQ(s.solve({mk_lit(a), mk_lit(b)}), SolveResult::Unsat);
  // Solver stays usable after assumption-unsat.
  EXPECT_EQ(s.solve({mk_lit(a)}), SolveResult::Sat);
}

TEST(Sat, IncrementalAddAfterSolve) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(mk_lit(a), mk_lit(b));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  s.add_clause(~mk_lit(a));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(b));
  s.add_clause(~mk_lit(b));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
  // A hard pigeonhole instance with a 1-conflict budget cannot finish.
  Solver s;
  const int holes = 7, pigeons = 8;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(mk_lit(p[i][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j) s.add_clause(~mk_lit(p[i][h]), ~mk_lit(p[j][h]));
  EXPECT_EQ(s.solve({}, 1), SolveResult::Unknown);
  // And succeeds with an ample budget.
  EXPECT_EQ(s.solve({}, 1000000), SolveResult::Unsat);
}

TEST(Sat, DuplicateAndTautologyClausesHandled) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  EXPECT_TRUE(s.add_clause(mk_lit(a), mk_lit(a)));           // dup literal
  EXPECT_TRUE(s.add_clause(mk_lit(b), ~mk_lit(b)));          // tautology
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Sat, ManyRandom3SatSmallInstancesAgreeWithBruteForce) {
  // Cross-check against exhaustive enumeration on 12-variable instances.
  std::uint64_t state = 12345;
  auto rnd = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int inst = 0; inst < 30; ++inst) {
    const int nv = 12, nc = 50;
    std::vector<std::array<int, 3>> clauses;
    for (int c = 0; c < nc; ++c) {
      std::array<int, 3> cl{};
      for (int k = 0; k < 3; ++k) {
        const int var = static_cast<int>(rnd() % nv);
        const bool neg = (rnd() & 1) != 0;
        cl[static_cast<std::size_t>(k)] = neg ? -(var + 1) : (var + 1);
      }
      clauses.push_back(cl);
    }
    bool brute_sat = false;
    for (int m = 0; m < (1 << nv) && !brute_sat; ++m) {
      bool ok = true;
      for (const auto& cl : clauses) {
        bool cok = false;
        for (int lit : cl) {
          const int v = std::abs(lit) - 1;
          const bool val = ((m >> v) & 1) != 0;
          if ((lit > 0) == val) {
            cok = true;
            break;
          }
        }
        if (!cok) {
          ok = false;
          break;
        }
      }
      brute_sat = ok;
    }
    Solver s;
    std::vector<Var> vars;
    for (int v = 0; v < nv; ++v) vars.push_back(s.new_var());
    for (const auto& cl : clauses) {
      std::vector<Lit> lits;
      for (int lit : cl)
        lits.push_back(mk_lit(vars[static_cast<std::size_t>(std::abs(lit) - 1)], lit < 0));
      s.add_clause(lits);
    }
    const SolveResult r = s.solve();
    EXPECT_EQ(r == SolveResult::Sat, brute_sat) << "instance " << inst;
    if (r == SolveResult::Sat) {
      // Verify the model.
      for (const auto& cl : clauses) {
        bool cok = false;
        for (int lit : cl) {
          const bool val = s.model_value(vars[static_cast<std::size_t>(std::abs(lit) - 1)]);
          if ((lit > 0) == val) cok = true;
        }
        EXPECT_TRUE(cok);
      }
    }
  }
}

}  // namespace
}  // namespace pdat::sat
