#include <gtest/gtest.h>

#include <sstream>

#include "sim/bitsim.h"
#include "sim/ternary.h"
#include "sim/vcd.h"
#include "synth/builder.h"
#include "test_util.h"

namespace pdat {
namespace {

TEST(BitSim, CombinationalGateSlots) {
  Netlist nl;
  auto a = nl.add_input("a", 1);
  auto b = nl.add_input("b", 1);
  const NetId x = nl.add_cell(CellKind::And2, a[0], b[0]);
  nl.add_output("y", {x});
  BitSim sim(nl);
  sim.set_input(a[0], 0b1100);
  sim.set_input(b[0], 0b1010);
  sim.eval();
  EXPECT_EQ(sim.value(x) & 0xf, 0b1000u);
}

TEST(BitSim, FlopHoldsAndClocks) {
  Netlist nl;
  auto d = nl.add_input("d", 1);
  const NetId q = nl.add_cell(CellKind::Dff, d[0]);
  nl.add_output("q", {q});
  BitSim sim(nl);
  sim.set_input(d[0], ~0ULL);
  sim.eval();
  EXPECT_EQ(sim.value(q), 0u) << "before the clock edge, q is the init value";
  sim.latch();
  sim.eval();
  EXPECT_EQ(sim.value(q), ~0ULL);
}

TEST(BitSim, InitValueRespected) {
  Netlist nl;
  const NetId q = nl.add_cell(CellKind::Dff, nl.const0());
  nl.cell(nl.driver(q)).init = Tri::T;
  nl.add_output("q", {q});
  BitSim sim(nl);
  sim.eval();
  EXPECT_EQ(sim.value(q), ~0ULL);
  sim.latch();
  sim.eval();
  EXPECT_EQ(sim.value(q), 0u);
}

TEST(BitSim, PortHelpers) {
  Netlist nl;
  synth::Builder bld(nl);
  auto a = bld.input("a", 8);
  bld.output("y", bld.not_(a));
  BitSim sim(nl);
  const Port& in = nl.inputs()[0];
  const Port& out = nl.outputs()[0];
  sim.set_port_uniform(in, 0x5a);
  sim.eval();
  EXPECT_EQ(sim.read_port(out, 0), 0xa5u);
  EXPECT_EQ(sim.read_port(out, 63), 0xa5u);

  std::uint64_t per_slot[64];
  for (int i = 0; i < 64; ++i) per_slot[i] = static_cast<std::uint64_t>(i);
  sim.set_port_per_slot(in, per_slot);
  sim.eval();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(sim.read_port(out, i), (~static_cast<std::uint64_t>(i)) & 0xff);
  }
}

TEST(TernarySim, XInitFlopsProduceX) {
  Netlist nl;
  const NetId q = nl.add_cell(CellKind::Dff, nl.const0());
  nl.cell(nl.driver(q)).init = Tri::X;
  const NetId y = nl.add_cell(CellKind::And2, q, nl.const1());
  nl.add_output("y", {y});
  TernarySim sim(nl);
  sim.eval();
  EXPECT_EQ(sim.value(y), Tri::X);
  sim.step();  // D = const0 resolves the X
  sim.eval();
  EXPECT_EQ(sim.value(y), Tri::F);
}

TEST(TernarySim, AgreesWithBitSimWhenFullyDriven) {
  Netlist nl = test::random_netlist(99);
  BitSim bs(nl);
  TernarySim ts(nl);
  Rng rng(4242);
  for (int cycle = 0; cycle < 32; ++cycle) {
    for (const auto& p : nl.inputs()) {
      for (NetId n : p.bits) {
        const bool v = rng.chance(128);
        bs.set_input(n, v ? ~0ULL : 0);
        ts.set_input(n, v ? Tri::T : Tri::F);
      }
    }
    bs.eval();
    ts.eval();
    for (const auto& p : nl.outputs()) {
      for (NetId n : p.bits) {
        ASSERT_NE(ts.value(n), Tri::X);
        EXPECT_EQ(bs.value(n) != 0, ts.value(n) == Tri::T);
      }
    }
    bs.latch();
    ts.step();
  }
}

TEST(Vcd, EmitsWellFormedDumpWithChangesOnly) {
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto r = b.reg_decl(4, 0);
  b.connect_en(r, en[0], b.add_const(r.q, 1));
  b.output("count", r.q);
  BitSim sim(nl);
  std::ostringstream os;
  {
    VcdWriter vcd(os, nl, 0, {r.q[0]});
    sim.set_port_uniform(*nl.find_input("en"), 1);
    for (int t = 0; t < 5; ++t) {
      sim.eval();
      vcd.sample(sim);
      sim.latch();
    }
  }
  const std::string text = os.str();
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(text.find("$var wire 4"), std::string::npos);
  EXPECT_NE(text.find("b0001"), std::string::npos) << "count reaches 1";
  EXPECT_NE(text.find("b0100"), std::string::npos) << "count reaches 4";
  // Change-only encoding: 'en' appears exactly once (it never toggles).
  EXPECT_EQ(text.find("$date"), 0u);
}

}  // namespace
}  // namespace pdat
