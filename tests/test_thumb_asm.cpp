#include <gtest/gtest.h>

#include "base/types.h"
#include "isa/thumb_assembler.h"
#include "isa/thumb_encoding.h"
#include "isa/thumb_subsets.h"

namespace pdat::isa {
namespace {

std::uint16_t one(const std::string& text) {
  const auto prog = assemble_thumb(text);
  EXPECT_EQ(prog.halves.size(), 1u) << text;
  return prog.halves.at(0);
}

TEST(ThumbAsm, CanonicalEncodings) {
  EXPECT_EQ(one("movs r3, #7"), 0x2307);
  EXPECT_EQ(one("adds r1, r2, r3"), 0x18d1);
  EXPECT_EQ(one("adds r1, r2, #3"), 0x1cd1);
  EXPECT_EQ(one("adds r1, #200"), 0x31c8);
  EXPECT_EQ(one("lsls r0, r1, #4"), 0x0108);
  EXPECT_EQ(one("cmp r0, r1"), 0x4288);
  EXPECT_EQ(one("muls r2, r3"), 0x435a);
  EXPECT_EQ(one("bx lr"), 0x4770);
  EXPECT_EQ(one("nop"), 0xbf00);
  EXPECT_EQ(one("bkpt #1"), 0xbe01);
  EXPECT_EQ(one("str r1, [r2, #4]"), 0x6051);
  EXPECT_EQ(one("ldrb r1, [r2, #3]"), 0x78d1);
  EXPECT_EQ(one("ldr r1, [sp, #8]"), 0x9902);
  EXPECT_EQ(one("push {r0, r1, lr}"), 0xb503);
  EXPECT_EQ(one("pop {r4, pc}"), 0xbd10);
  EXPECT_EQ(one("add sp, #16"), 0xb004);
  EXPECT_EQ(one("sub sp, #16"), 0xb084);
  EXPECT_EQ(one("mov r9, r0"), 0x4681);
}

TEST(ThumbAsm, EveryEmittedHalfwordDecodes) {
  const auto prog = assemble_thumb(R"(
    start:
      movs r0, #1
      lsls r1, r0, #5
      adds r2, r0, r1
      bl fn
      b start
    fn:
      sxtb r3, r2
      rev r4, r2
      bx lr
  )");
  for (std::size_t i = 0; i < prog.halves.size(); ++i) {
    const std::uint16_t h = prog.halves[i];
    if (thumb_is_wide_prefix(h)) {
      ASSERT_LT(i + 1, prog.halves.size());
      EXPECT_NE(thumb_decode(h, prog.halves[i + 1]), nullptr);
      ++i;
    } else {
      EXPECT_NE(thumb_decode(h), nullptr) << std::hex << h;
    }
  }
}

TEST(ThumbAsm, BranchOffsetsResolveBothDirections) {
  const auto prog = assemble_thumb(R"(
    top:
      nop
      beq top
      bne down
      nop
    down:
      nop
  )");
  // beq at address 2: offset = 0 - (2+4) = -6.
  const ThumbFields f = thumb_extract(thumb_instr("b.cond"), prog.halves[1]);
  EXPECT_EQ(f.imm, -6);
  const ThumbFields g = thumb_extract(thumb_instr("b.cond"), prog.halves[2]);
  EXPECT_EQ(g.imm, 0);  // down is at 8; 8 - (4+4)
}

TEST(ThumbAsm, LiBuildsExactConstants) {
  for (std::uint32_t v : {0u, 1u, 255u, 256u, 0x1234u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    const auto prog = assemble_thumb("li r5, " + std::to_string(v) + "\nbkpt #0\n");
    // Decode-execute by hand: movs/lsls/adds only touch r5.
    std::uint32_t r5 = 0;
    for (std::uint16_t h : prog.halves) {
      const ThumbInstrSpec* spec = thumb_decode(h);
      ASSERT_NE(spec, nullptr);
      const ThumbFields f = thumb_extract(*spec, h);
      if (spec->name == "movs.i8") r5 = static_cast<std::uint32_t>(f.imm);
      else if (spec->name == "lsls") r5 <<= f.imm;
      else if (spec->name == "adds.i8") r5 += static_cast<std::uint32_t>(f.imm);
    }
    EXPECT_EQ(r5, v);
  }
}

TEST(ThumbAsm, Errors) {
  EXPECT_THROW(assemble_thumb("frob r0, r1\n"), PdatError);
  EXPECT_THROW(assemble_thumb("b nowhere\n"), PdatError);
  EXPECT_THROW(assemble_thumb("push {r9}\n"), PdatError);
  EXPECT_THROW(assemble_thumb("ldr r0, [r16, #0]\n"), PdatError);
}

TEST(ThumbAsm, RegListEncoding) {
  const auto prog = assemble_thumb("stm r0, {r1, r3, r5}\nldm r2, {r0}\n");
  const ThumbFields f = thumb_extract(thumb_instr("stm"), prog.halves[0]);
  EXPECT_EQ(f.rn, 0u);
  EXPECT_EQ(f.reglist, 0b101010u);
  const ThumbFields g = thumb_extract(thumb_instr("ldm"), prog.halves[1]);
  EXPECT_EQ(g.rn, 2u);
  EXPECT_EQ(g.reglist, 1u);
}

// --- subset edge cases (the fuzzer's generator contract, src/fuzz/) ---------

TEST(ThumbSubsetEdge, EmptySubsetContainsNothing) {
  const ThumbSubset empty = thumb_subset_from_names("empty", {});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.contains("movs.i8"));
  EXPECT_FALSE(empty.has_wide());
}

TEST(ThumbSubsetEdge, FullSubsetContainsEveryTableEntry) {
  const ThumbSubset all = thumb_subset_all();
  const auto& table = thumb_instructions();
  EXPECT_EQ(all.size(), table.size());
  for (const auto& spec : table) {
    EXPECT_TRUE(all.contains(spec.name)) << spec.name;
  }
  EXPECT_TRUE(all.has_wide());
}

TEST(ThumbSubsetEdge, InterestingSubsetIsNarrowOnly) {
  // The paper's §VII-B subset drops every 32-bit encoding; the Thumb fuzz
  // generator relies on this to emit a pure halfword stream.
  const ThumbSubset sub = thumb_subset_interesting();
  EXPECT_FALSE(sub.has_wide());
  EXPECT_FALSE(sub.contains("bl"));
  EXPECT_FALSE(sub.contains("muls"));
  EXPECT_TRUE(sub.contains("movs.i8"));
  const auto& table = thumb_instructions();
  for (int idx : sub.instrs) {
    const auto& spec = table[static_cast<std::size_t>(idx)];
    EXPECT_FALSE(spec.wide) << spec.name;
  }
}

TEST(ThumbSubsetEdge, AssembledProgramRoundTripsThroughMembership) {
  // Every halfword the assembler emits for in-subset mnemonics must decode
  // back to a spec the subset contains — the closure the fuzz generator
  // promises for its concrete encodings.
  const ThumbSubset sub = thumb_subset_interesting();
  const auto prog = assemble_thumb(R"(
    top:
      movs r0, #5
      lsls r1, r0, #2
      adds r2, r0, r1
      cmp r2, r0
      bne top
      str r2, [r1, #4]
      bkpt #0
  )");
  ASSERT_FALSE(prog.halves.empty());
  for (const std::uint16_t hw : prog.halves) {
    ASSERT_FALSE(thumb_is_wide_prefix(hw)) << std::hex << hw;
    const ThumbInstrSpec* spec = thumb_decode(hw);
    ASSERT_NE(spec, nullptr) << std::hex << hw;
    EXPECT_TRUE(sub.contains(spec->name)) << spec->name;
  }
}

}  // namespace
}  // namespace pdat::isa
