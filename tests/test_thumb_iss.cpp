// Direct ARMv6-M semantics checks of the Thumb ISS against hand-computed
// architectural values (the core is separately lockstep-checked against the
// ISS; this file anchors the ISS itself to the manual).
#include <gtest/gtest.h>

#include "isa/thumb_assembler.h"
#include "iss/thumb_iss.h"

namespace pdat::iss {
namespace {

ThumbIss run(const std::string& text) {
  const auto prog = isa::assemble_thumb(text);
  ThumbIss iss;
  iss.load_halfwords(0, prog.halves);
  iss.reset();
  iss.run(10000);
  EXPECT_TRUE(iss.halted());
  EXPECT_FALSE(iss.undefined());
  return iss;
}

TEST(ThumbFlags, AddsSetsCarryAndOverflow) {
  // 0x7fffffff + 1: N=1 Z=0 C=0 V=1.
  const auto s = run(R"(
      movs r0, #1
      mvns r0, r0          @ 0xFFFFFFFE
      lsrs r0, r0, #1      @ 0x7FFFFFFF
      movs r1, #1
      adds r2, r0, r1
      bkpt #0
  )");
  EXPECT_EQ(s.reg(2), 0x80000000u);
  EXPECT_TRUE(s.flag_n());
  EXPECT_FALSE(s.flag_z());
  EXPECT_FALSE(s.flag_c());
  EXPECT_TRUE(s.flag_v());
}

TEST(ThumbFlags, SubsBorrowConvention) {
  // ARM: C = NOT borrow. 5 - 7 -> C=0; 7 - 5 -> C=1.
  auto s = run("movs r0, #5\nmovs r1, #7\nsubs r2, r0, r1\nbkpt #0\n");
  EXPECT_FALSE(s.flag_c());
  EXPECT_TRUE(s.flag_n());
  s = run("movs r0, #7\nmovs r1, #5\nsubs r2, r0, r1\nbkpt #0\n");
  EXPECT_TRUE(s.flag_c());
  EXPECT_FALSE(s.flag_n());
  s = run("movs r0, #5\nsubs r0, #5\nbkpt #0\n");
  EXPECT_TRUE(s.flag_z());
  EXPECT_TRUE(s.flag_c());
}

TEST(ThumbFlags, AdcsUsesIncomingCarry) {
  // Set C via a subtraction that does not borrow, then adc.
  const auto s = run(R"(
      movs r0, #9
      subs r0, #4          @ C=1
      movs r1, #10
      movs r2, #20
      adcs r1, r2          @ 10+20+1
      bkpt #0
  )");
  EXPECT_EQ(s.reg(1), 31u);
}

TEST(ThumbFlags, SbcsWithBorrow) {
  const auto s = run(R"(
      movs r0, #4
      subs r0, #9          @ borrow -> C=0
      movs r1, #10
      movs r2, #3
      sbcs r1, r2          @ 10 - 3 - 1 = 6
      bkpt #0
  )");
  EXPECT_EQ(s.reg(1), 6u);
}

TEST(ThumbFlags, LslsCarryIsLastBitOut) {
  auto s = run("movs r0, #3\nlsls r0, r0, #31\nbkpt #0\n");
  EXPECT_EQ(s.reg(0), 0x80000000u);
  EXPECT_TRUE(s.flag_c());  // bit 1 of 3 shifted out last
  s = run("movs r0, #1\nlsls r0, r0, #31\nbkpt #0\n");
  EXPECT_FALSE(s.flag_c());
}

TEST(ThumbFlags, RegisterShiftsBeyond32) {
  // lsl by 32 -> result 0, C = old bit 0; by 33 -> result 0, C = 0.
  auto s = run(R"(
      movs r0, #1
      movs r1, #32
      lsls r0, r1
      bkpt #0
  )");
  EXPECT_EQ(s.reg(0), 0u);
  EXPECT_TRUE(s.flag_c());
  EXPECT_TRUE(s.flag_z());
  s = run(R"(
      movs r0, #1
      movs r1, #33
      lsls r0, r1
      bkpt #0
  )");
  EXPECT_EQ(s.reg(0), 0u);
  EXPECT_FALSE(s.flag_c());
}

TEST(ThumbFlags, AsrsSaturatesAtSign) {
  const auto s = run(R"(
      movs r0, #1
      lsls r0, r0, #31     @ 0x80000000
      movs r1, #40
      asrs r0, r1
      bkpt #0
  )");
  EXPECT_EQ(s.reg(0), 0xffffffffu);
  EXPECT_TRUE(s.flag_c());
}

TEST(ThumbFlags, RorsRotates) {
  const auto s = run(R"(
      movs r0, #0x81
      movs r1, #4
      rors r0, r1
      bkpt #0
  )");
  EXPECT_EQ(s.reg(0), 0x10000008u);
  EXPECT_FALSE(s.flag_n());
}

TEST(ThumbFlags, RsbsIsNegate) {
  const auto s = run("movs r0, #7\nrsbs r1, r0\nbkpt #0\n");
  EXPECT_EQ(s.reg(1), 0xfffffff9u);
  EXPECT_TRUE(s.flag_n());
  EXPECT_FALSE(s.flag_c());  // 0 - 7 borrows
}

TEST(ThumbFlags, MovsAndLogicLeaveCarryAlone) {
  const auto s = run(R"(
      movs r0, #9
      subs r0, #4          @ C=1
      movs r1, #0          @ sets Z, must keep C
      bkpt #0
  )");
  EXPECT_TRUE(s.flag_c());
  EXPECT_TRUE(s.flag_z());
}

TEST(ThumbIssAbi, PcReadsAreInstructionPlus4) {
  const auto s = run(R"(
      mov r0, pc           @ reads 0 + 4
      nop
      bkpt #0
  )");
  EXPECT_EQ(s.reg(0), 4u);
}

TEST(ThumbIssAbi, BlSetsThumbBitInLr) {
  const auto s = run(R"(
      bl fn
      bkpt #0
    fn:
      mov r4, lr
      bx lr
  )");
  EXPECT_EQ(s.reg(4), 5u);  // return address 4 | thumb bit
}

TEST(ThumbIssMem, StmLdmWriteback) {
  const auto s = run(R"(
      movs r0, #64
      movs r1, #11
      movs r2, #22
      stm r0, {r1, r2}
      bkpt #0
  )");
  EXPECT_EQ(s.reg(0), 72u) << "rn writeback";
  EXPECT_EQ(s.load_word(64), 11u);
  EXPECT_EQ(s.load_word(68), 22u);
}

TEST(ThumbIssMem, PushPopRoundTripSp) {
  const auto s = run(R"(
      movs r4, #44
      movs r5, #55
      push {r4, r5}
      movs r4, #0
      movs r5, #0
      pop {r4, r5}
      bkpt #0
  )");
  EXPECT_EQ(s.reg(4), 44u);
  EXPECT_EQ(s.reg(5), 55u);
  EXPECT_EQ(s.reg(13), 0x10000u);
}

}  // namespace
}  // namespace pdat::iss
