// Tests for the observability layer (src/trace/): registry/docs coherence,
// trace and metrics JSON validity, span nesting, disabled-mode
// zero-allocation, and the determinism contract across worker-thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "opt/optimizer.h"
#include "pdat/errors.h"
#include "pdat/pipeline.h"
#include "synth/builder.h"
#include "test_util.h"
#include "trace/json.h"
#include "trace/metrics.h"
#include "trace/registry.h"
#include "trace/trace.h"

// --- counting operator new ---------------------------------------------------
// Replaces the global allocator for this test binary so the disabled-mode
// zero-allocation guarantee can be asserted directly.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pdat {
namespace {

namespace tr = ::pdat::trace;

/// The pipeline reads PDAT_TRACE / PDAT_METRICS when the options leave the
/// paths empty; scrub them so ambient shell state cannot affect a test.
void scrub_env() {
  ::unsetenv("PDAT_TRACE");
  ::unsetenv("PDAT_METRICS");
}

// --- registry ----------------------------------------------------------------

TEST(TraceRegistry, EveryEnumeratorNamedAndUnique) {
  std::set<std::string> names;
  for (const auto& def : tr::telemetry_registry()) {
    ASSERT_NE(def.name, nullptr);
    const std::string name = def.name;
    EXPECT_TRUE(names.insert(name).second) << "duplicate registered name " << name;
    // Dotted lowercase identifier, at least two components.
    EXPECT_NE(name.find('.'), std::string::npos) << name;
    for (char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
                  c == '.' || c == '-')
          << name;
    }
    ASSERT_NE(def.unit, nullptr) << name;
    ASSERT_NE(def.description, nullptr) << name;
    EXPECT_GT(std::string(def.description).size(), 10u) << name;
  }
  EXPECT_EQ(names.size(), tr::telemetry_registry().size());
  // Enum -> name round trips.
  EXPECT_STREQ(tr::counter_name(tr::Counter::SatConflicts), "sat.conflicts");
  EXPECT_STREQ(tr::histogram_name(tr::Histogram::RuntimeQueueDepth),
               "runtime.queue_depth");
}

// The stability guarantee in docs/telemetry.md: every registered span,
// counter, and histogram name must be documented there. PDAT_SOURCE_DIR is
// injected by tests/CMakeLists.txt.
TEST(TraceRegistry, EveryNameDocumentedInTelemetryMd) {
  const std::string path = std::string(PDAT_SOURCE_DIR) + "/docs/telemetry.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  for (const auto& def : tr::telemetry_registry()) {
    // Names appear backticked in the reference tables.
    const std::string needle = "`" + std::string(def.name) + "`";
    EXPECT_NE(doc.find(needle), std::string::npos)
        << def.name << " is registered but not documented in docs/telemetry.md";
  }
}

// --- counters / histograms ---------------------------------------------------

TEST(TraceCounters, AccumulateAndResetAcrossRuns) {
  tr::begin_run(/*events=*/false);
  EXPECT_TRUE(tr::collecting());
  EXPECT_FALSE(tr::tracing());
  tr::add(tr::Counter::SatConflicts, 3);
  tr::add(tr::Counter::SatConflicts, 4);
  EXPECT_EQ(tr::counter_value(tr::Counter::SatConflicts), 7u);

  tr::observe(tr::Histogram::SatLearnedClauseSize, 0);
  tr::observe(tr::Histogram::SatLearnedClauseSize, 1);
  tr::observe(tr::Histogram::SatLearnedClauseSize, 5);
  const tr::HistogramSnapshot h = tr::histogram_snapshot(tr::Histogram::SatLearnedClauseSize);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 6u);
  EXPECT_EQ(h.max, 5u);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count);

  tr::end_run();
  EXPECT_FALSE(tr::collecting());
  // Disabled: adds are dropped, recorded data stays readable.
  tr::add(tr::Counter::SatConflicts, 100);
  EXPECT_EQ(tr::counter_value(tr::Counter::SatConflicts), 7u);
  // A fresh run resets everything.
  tr::begin_run(false);
  EXPECT_EQ(tr::counter_value(tr::Counter::SatConflicts), 0u);
  EXPECT_EQ(tr::histogram_snapshot(tr::Histogram::SatLearnedClauseSize).count, 0u);
  tr::end_run();
}

TEST(TraceHistograms, PowerOfTwoBucketing) {
  EXPECT_EQ(tr::histogram_bucket(0), 0u);
  EXPECT_EQ(tr::histogram_bucket(1), 1u);
  EXPECT_EQ(tr::histogram_bucket(2), 2u);
  EXPECT_EQ(tr::histogram_bucket(3), 2u);
  EXPECT_EQ(tr::histogram_bucket(4), 3u);
  EXPECT_EQ(tr::histogram_bucket(7), 3u);
  EXPECT_EQ(tr::histogram_bucket(8), 4u);
  // Everything at or beyond 2^(kHistogramBuckets-2) lands in the last bucket.
  EXPECT_EQ(tr::histogram_bucket(1u << 14), tr::kHistogramBuckets - 1);
  EXPECT_EQ(tr::histogram_bucket(~0ull), tr::kHistogramBuckets - 1);
}

// --- disabled mode -----------------------------------------------------------

TEST(TraceDisabled, NoAllocationOnDisabledPath) {
  tr::end_run();  // ensure fully disabled
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    tr::Span outer("pdat.run", {"gates_before", i});
    tr::Span inner("runtime.job", {"job", i}, {"attempt", 1});
    inner.arg("extra", 7);
    tr::add(tr::Counter::SatConflicts, 1);
    tr::observe(tr::Histogram::SatConflictsPerCall, 42);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "disabled-mode instrumentation must not allocate";
}

TEST(TraceDisabled, CollectingWithoutEventsRecordsNoSpans) {
  tr::begin_run(/*events=*/false);
  { tr::Span s("pdat.run"); }
  tr::add(tr::Counter::SatConflicts, 1);
  EXPECT_TRUE(tr::events().empty());
  EXPECT_EQ(tr::counter_value(tr::Counter::SatConflicts), 1u);
  tr::end_run();
}

// --- spans and the Chrome trace ----------------------------------------------

TEST(TraceSpans, NestingAndArgsRecorded) {
  tr::begin_run(/*events=*/true);
  EXPECT_TRUE(tr::tracing());
  {
    tr::Span parent("pdat.stage.induction");
    {
      tr::Span child("induction.round", {"round", 3});
      child.arg("killed", 12);
    }
  }
  tr::end_run();

  const std::vector<tr::Event> evs = tr::events();
  ASSERT_EQ(evs.size(), 2u);
  // Spans are appended at destruction: child first.
  const tr::Event& child = evs[0];
  const tr::Event& parent = evs[1];
  EXPECT_STREQ(child.name, "induction.round");
  EXPECT_STREQ(parent.name, "pdat.stage.induction");
  ASSERT_EQ(child.num_args, 2u);
  EXPECT_STREQ(child.args[0].key, "round");
  EXPECT_EQ(child.args[0].value, 3);
  EXPECT_STREQ(child.args[1].key, "killed");
  EXPECT_EQ(child.args[1].value, 12);
  // Time containment on the same thread.
  EXPECT_EQ(child.tid, parent.tid);
  EXPECT_GE(child.ts_us, parent.ts_us);
  EXPECT_LE(child.ts_us + child.dur_us, parent.ts_us + parent.dur_us);
}

TEST(TraceSpans, ChromeTraceJsonParsesWithDocumentedShape) {
  tr::begin_run(/*events=*/true);
  {
    tr::Span run("pdat.run", {"gates_before", 120});
    tr::Span stage("pdat.stage.restrict");
  }
  tr::end_run();
  std::ostringstream os;
  tr::write_chrome_trace(os);

  const tr::json::Value doc = tr::json::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const auto& events = doc.at("traceEvents").items();
  ASSERT_EQ(events.size(), 2u);
  std::set<std::string> names;
  for (const auto& e : events) {
    EXPECT_EQ(e.at("cat").string, "pdat");
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_EQ(e.at("pid").number, 1);
    EXPECT_TRUE(e.at("tid").is_number());
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    names.insert(e.at("name").string);
    if (e.has("args")) {
      for (const auto& [k, v] : e.at("args").members()) {
        EXPECT_TRUE(v.is_number()) << k;
      }
    }
  }
  EXPECT_TRUE(names.count("pdat.run"));
  EXPECT_TRUE(names.count("pdat.stage.restrict"));
  // The run span kept its arg.
  for (const auto& e : events) {
    if (e.at("name").string != "pdat.run") continue;
    EXPECT_EQ(e.at("args").at("gates_before").number, 120);
  }
}

TEST(TraceSpans, NormalizedEventsEraseThreadsArg) {
  tr::begin_run(/*events=*/true);
  { tr::Span s("runtime.run", {"jobs", 4}, {"threads", 8}); }
  tr::end_run();
  const auto norm = tr::normalized_events();
  ASSERT_EQ(norm.size(), 1u);
  EXPECT_EQ(norm[0], "runtime.run jobs=4");
}

// --- metrics.json ------------------------------------------------------------

tr::MetricsInfo small_metrics_info() {
  tr::MetricsInfo info;
  info.label = "test_trace";
  info.candidates = 10;
  info.after_sim_filter = 8;
  info.proven = 5;
  info.gates_before = 100;
  info.gates_after = 90;
  info.total_wall_seconds = 0.25;
  for (std::size_t s = 0; s < kNumPdatStages; ++s) {
    info.stages.push_back({stage_name(static_cast<PdatStage>(s)), 0.01});
  }
  return info;
}

TEST(TraceMetrics, MetricsJsonValidAndOnlyRegisteredNames) {
  tr::begin_run(/*events=*/false);
  tr::add(tr::Counter::SatConflicts, 17);
  tr::add(tr::Counter::RuntimeWorkerBusyMicros, 1234);  // timing-class
  tr::observe(tr::Histogram::SatLearnedClauseSize, 4);
  tr::observe(tr::Histogram::RuntimeQueueDepth, 2);  // timing-class
  tr::RoundRecord rec;
  rec.round = -1;
  rec.alive_before = 10;
  rec.cex_kills = 2;
  rec.sat_calls = 1;
  tr::record_round(rec);
  tr::end_run();

  std::ostringstream os;
  tr::write_metrics_json(os, small_metrics_info());
  const tr::json::Value doc = tr::json::parse(os.str());

  EXPECT_EQ(doc.at("schema").string, tr::kMetricsSchemaName);
  EXPECT_EQ(doc.at("version").number, tr::kMetricsSchemaVersion);
  EXPECT_EQ(doc.at("label").string, "test_trace");

  // Registered names, split by the deterministic flag.
  std::set<std::string> det_counters, tim_counters, det_hists, tim_hists;
  for (std::size_t i = 0; i < tr::kNumCounters; ++i) {
    const auto c = static_cast<tr::Counter>(i);
    (tr::counter_deterministic(c) ? det_counters : tim_counters).insert(tr::counter_name(c));
  }
  for (std::size_t i = 0; i < tr::kNumHistograms; ++i) {
    const auto h = static_cast<tr::Histogram>(i);
    (tr::histogram_deterministic(h) ? det_hists : tim_hists).insert(tr::histogram_name(h));
  }

  const auto key_set = [](const tr::json::Value& v) {
    std::set<std::string> keys;
    for (const auto& [k, _] : v.members()) keys.insert(k);
    return keys;
  };
  const auto& det = doc.at("deterministic");
  const auto& tim = doc.at("timing");
  EXPECT_EQ(key_set(det.at("counters")), det_counters);
  EXPECT_EQ(key_set(tim.at("counters")), tim_counters);
  EXPECT_EQ(key_set(det.at("histograms")), det_hists);
  EXPECT_EQ(key_set(tim.at("histograms")), tim_hists);

  EXPECT_EQ(det.at("counters").at("sat.conflicts").number, 17);
  EXPECT_EQ(tim.at("counters").at("runtime.worker_busy_micros").number, 1234);

  // Pipeline funnel + round table.
  const auto& pipe = det.at("pipeline");
  EXPECT_EQ(pipe.at("candidates").number, 10);
  EXPECT_EQ(pipe.at("proven").number, 5);
  EXPECT_EQ(pipe.at("resumed_from_round").number, -2);
  const auto& rounds = det.at("induction_rounds").items();
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].at("round").number, -1);
  EXPECT_EQ(rounds[0].at("alive_before").number, 10);

  // Timing section shape: 8 stages in pipeline order, 16-bucket histograms.
  const auto& stages = tim.at("stages").items();
  ASSERT_EQ(stages.size(), kNumPdatStages);
  for (std::size_t s = 0; s < kNumPdatStages; ++s) {
    EXPECT_EQ(stages[s].at("name").string, stage_name(static_cast<PdatStage>(s)));
  }
  const auto& hist = det.at("histograms").at("sat.learned_clause_size");
  EXPECT_EQ(hist.at("count").number, 1);
  EXPECT_EQ(hist.at("sum").number, 4);
  EXPECT_EQ(hist.at("buckets").items().size(), 16u);
}

// --- pipeline integration + determinism across thread counts -----------------

PdatResult run_traced_pipeline(int threads) {
  Netlist nl = test::random_netlist(23, 6, 90, 8, 4);
  opt::optimize(nl);
  PdatOptions opt;
  opt.induction.threads = threads;
  const NetId tied = nl.find_input("in")->bits[0];
  return run_pdat(nl, [&](Netlist& a) {
    RestrictionResult r;
    synth::Builder ab(a);
    r.env.add_assume(ab.not_(tied));
    r.env.drivers.push_back(
        std::make_shared<ConstantDriver>(std::vector<NetId>{tied}, false));
    return r;
  }, opt);
}

struct DeterministicSnapshot {
  std::vector<std::uint64_t> counters;
  std::vector<tr::HistogramSnapshot> histograms;
  std::vector<tr::RoundRecord> rounds;
  std::vector<std::string> spans;
};

DeterministicSnapshot snapshot_deterministic() {
  DeterministicSnapshot s;
  for (std::size_t i = 0; i < tr::kNumCounters; ++i) {
    const auto c = static_cast<tr::Counter>(i);
    if (tr::counter_deterministic(c)) s.counters.push_back(tr::counter_value(c));
  }
  for (std::size_t i = 0; i < tr::kNumHistograms; ++i) {
    const auto h = static_cast<tr::Histogram>(i);
    if (tr::histogram_deterministic(h)) s.histograms.push_back(tr::histogram_snapshot(h));
  }
  s.rounds = tr::round_records();
  s.spans = tr::normalized_events();
  return s;
}

TEST(TraceDeterminism, DeterministicSubtreeIdenticalAcrossThreadCounts) {
  scrub_env();
  tr::begin_run(/*events=*/true);
  const PdatResult r1 = run_traced_pipeline(1);
  const DeterministicSnapshot s1 = snapshot_deterministic();
  tr::end_run();

  tr::begin_run(/*events=*/true);
  const PdatResult r3 = run_traced_pipeline(3);
  const DeterministicSnapshot s3 = snapshot_deterministic();
  tr::end_run();

  EXPECT_GT(s1.counters[static_cast<std::size_t>(tr::Counter::SatSolveCalls)], 0u);
  EXPECT_EQ(r1.proven, r3.proven);
  EXPECT_EQ(s1.counters, s3.counters);
  ASSERT_EQ(s1.histograms.size(), s3.histograms.size());
  for (std::size_t i = 0; i < s1.histograms.size(); ++i) {
    EXPECT_EQ(s1.histograms[i].count, s3.histograms[i].count) << i;
    EXPECT_EQ(s1.histograms[i].sum, s3.histograms[i].sum) << i;
    EXPECT_EQ(s1.histograms[i].max, s3.histograms[i].max) << i;
    EXPECT_EQ(s1.histograms[i].buckets, s3.histograms[i].buckets) << i;
  }
  ASSERT_EQ(s1.rounds.size(), s3.rounds.size());
  for (std::size_t i = 0; i < s1.rounds.size(); ++i) {
    EXPECT_EQ(s1.rounds[i].round, s3.rounds[i].round);
    EXPECT_EQ(s1.rounds[i].alive_before, s3.rounds[i].alive_before);
    EXPECT_EQ(s1.rounds[i].cex_kills, s3.rounds[i].cex_kills);
    EXPECT_EQ(s1.rounds[i].budget_kills, s3.rounds[i].budget_kills);
    EXPECT_EQ(s1.rounds[i].sat_calls, s3.rounds[i].sat_calls);
  }
  EXPECT_EQ(s1.spans, s3.spans);
}

TEST(TracePipeline, WritesTraceAndMetricsFilesWhenConfigured) {
  scrub_env();
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/test_trace.trace.json";
  const std::string metrics_path = dir + "/test_trace.metrics.json";

  Netlist nl = test::random_netlist(7, 5, 60, 6, 3);
  opt::optimize(nl);
  PdatOptions opt;
  opt.trace_path = trace_path;
  opt.metrics_path = metrics_path;
  opt.run_label = "test_trace:files";
  const PdatResult res =
      run_pdat(nl, [](Netlist&) { return RestrictionResult{}; }, opt);
  // run_pdat owns the tracer lifecycle here; it must disable it on exit.
  EXPECT_FALSE(tr::collecting());

  std::ifstream tf(trace_path);
  ASSERT_TRUE(tf.good()) << trace_path;
  std::stringstream tbuf;
  tbuf << tf.rdbuf();
  const tr::json::Value trace_doc = tr::json::parse(tbuf.str());
  const auto& events = trace_doc.at("traceEvents").items();
  EXPECT_FALSE(events.empty());
  std::set<std::string> names;
  for (const auto& e : events) names.insert(e.at("name").string);
  EXPECT_TRUE(names.count("pdat.run"));
  EXPECT_TRUE(names.count("pdat.stage.induction"));
  // Every span name in the file is registered.
  std::set<std::string> registered;
  for (const auto& def : tr::telemetry_registry()) {
    if (def.kind == tr::MetricKind::Span) registered.insert(def.name);
  }
  for (const auto& n : names) {
    EXPECT_TRUE(registered.count(n)) << "unregistered span name in trace: " << n;
  }

  std::ifstream mf(metrics_path);
  ASSERT_TRUE(mf.good()) << metrics_path;
  std::stringstream mbuf;
  mbuf << mf.rdbuf();
  const tr::json::Value metrics_doc = tr::json::parse(mbuf.str());
  EXPECT_EQ(metrics_doc.at("schema").string, "pdat-metrics");
  EXPECT_EQ(metrics_doc.at("label").string, "test_trace:files");
  const auto& pipe = metrics_doc.at("deterministic").at("pipeline");
  EXPECT_EQ(pipe.at("gates_before").number, static_cast<double>(res.gates_before));
  EXPECT_EQ(pipe.at("gates_after").number, static_cast<double>(res.gates_after));
  EXPECT_GT(metrics_doc.at("deterministic").at("counters").at("sat.solve_calls").number, 0);
}

}  // namespace
}  // namespace pdat
