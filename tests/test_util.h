// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "netlist/netlist.h"
#include "sim/bitsim.h"

namespace pdat::test {

/// Builds a random well-formed sequential netlist: `n_inputs` PI bits,
/// `n_gates` random cells over earlier nets, `n_flops` flops fed by random
/// nets, and a handful of primary outputs. Deterministic in `seed`.
inline Netlist random_netlist(std::uint64_t seed, int n_inputs = 8, int n_gates = 120,
                              int n_flops = 12, int n_outputs = 6) {
  Rng rng(seed);
  Netlist nl;
  std::vector<NetId> pool;
  for (NetId n : nl.add_input("in", static_cast<std::size_t>(n_inputs))) pool.push_back(n);
  pool.push_back(nl.const0());
  pool.push_back(nl.const1());

  // Flop outputs join the pool up-front; their D inputs are connected later.
  struct PendingFlop {
    CellId cell;
  };
  std::vector<PendingFlop> flops;
  for (int i = 0; i < n_flops; ++i) {
    const NetId q = nl.add_cell(CellKind::Dff, nl.const0());
    const CellId id = nl.driver(q);
    nl.cell(id).init = rng.chance(128) ? Tri::T : Tri::F;
    flops.push_back({id});
    pool.push_back(q);
  }

  auto pick = [&]() { return pool[rng.below(pool.size())]; };
  const CellKind kinds[] = {CellKind::Inv,   CellKind::And2,  CellKind::Or2,  CellKind::Nand2,
                            CellKind::Nor2,  CellKind::Xor2,  CellKind::Xnor2, CellKind::Mux2,
                            CellKind::And3,  CellKind::Or3,   CellKind::Nand3, CellKind::Nor3,
                            CellKind::Aoi21, CellKind::Oai21, CellKind::Buf};
  for (int i = 0; i < n_gates; ++i) {
    const CellKind k = kinds[rng.below(std::size(kinds))];
    const int ni = cell_num_inputs(k);
    const NetId a = pick();
    const NetId b = ni >= 2 ? pick() : kNoNet;
    const NetId c = ni >= 3 ? pick() : kNoNet;
    pool.push_back(nl.add_cell(k, a, b, c));
  }
  // Connect flop D pins to arbitrary pool nets (may create sequential loops,
  // which are fine).
  for (const auto& f : flops) nl.cell(f.cell).in[0] = pick();

  std::vector<NetId> outs;
  for (int i = 0; i < n_outputs; ++i) outs.push_back(pick());
  nl.add_output("out", outs);
  return nl;
}

/// Runs both netlists side by side with identical random inputs for `cycles`
/// cycles and compares all primary outputs each cycle. Both netlists must
/// have identical port shapes. Returns true when traces match.
inline bool cosim_equal(const Netlist& a, const Netlist& b, std::uint64_t seed, int cycles) {
  BitSim sa(a), sb(b);
  Rng rng(seed);
  for (int t = 0; t < cycles; ++t) {
    for (std::size_t p = 0; p < a.inputs().size(); ++p) {
      const Port& pa = a.inputs()[p];
      const Port& pb = b.inputs()[p];
      for (std::size_t i = 0; i < pa.bits.size(); ++i) {
        const std::uint64_t w = rng.next();
        sa.set_input(pa.bits[i], w);
        sb.set_input(pb.bits[i], w);
      }
    }
    sa.eval();
    sb.eval();
    for (std::size_t p = 0; p < a.outputs().size(); ++p) {
      const Port& pa = a.outputs()[p];
      const Port& pb = b.outputs()[p];
      for (std::size_t i = 0; i < pa.bits.size(); ++i) {
        if (sa.value(pa.bits[i]) != sb.value(pb.bits[i])) return false;
      }
    }
    sa.latch();
    sb.latch();
  }
  return true;
}

}  // namespace pdat::test
