#include <gtest/gtest.h>

#include "cores/ibex/ibex_core.h"
#include "cores/ibex/ibex_tb.h"
#include "netlist/check.h"
#include "opt/optimizer.h"
#include "pdat/pipeline.h"
#include "synth/builder.h"
#include "test_util.h"
#include "validate/fault.h"
#include "validate/lockstep.h"
#include "validate/miter.h"
#include "validate/validate.h"

namespace pdat {
namespace {

using validate::Verdict;

// Toy campaign design: an enable-gated counter the pipeline can remove under
// "en == 0", plus a data path (o = data ^ cnt) and a parity tree that stay
// live after the reduction so gate faults have somewhere to land.
Netlist toy_design() {
  Netlist nl;
  synth::Builder b(nl);
  auto en = b.input("en", 1);
  auto data = b.input("data", 8);
  auto cnt = b.reg_decl(8, 0);
  b.connect(cnt, b.mux(en[0], cnt.q, b.add_const(cnt.q, 1)));
  b.output("o", b.xor_(data, cnt.q));
  NetId parity = data[0];
  for (std::size_t i = 1; i < data.size(); ++i) parity = b.xor_(parity, data[i]);
  b.output("parity", {parity});
  b.output("q", cnt.q);
  opt::optimize(nl);
  return nl;
}

std::function<RestrictionResult(Netlist&)> toy_restrict(const Netlist& design) {
  const NetId en_net = design.find_input("en")->bits[0];
  return [en_net](Netlist& a) {
    RestrictionResult r;
    synth::Builder ab(a);
    r.env.add_assume(ab.not_(en_net));
    r.env.drivers.push_back(
        std::make_shared<ConstantDriver>(std::vector<NetId>{en_net}, false));
    return r;
  };
}

struct ToyFixture {
  Netlist design;
  std::function<RestrictionResult(Netlist&)> restrict_fn;
  PdatResult result;
  ToyFixture() : design(toy_design()), restrict_fn(toy_restrict(design)) {
    result = run_pdat(design, restrict_fn);
  }
};

const ToyFixture& toy() {
  static const ToyFixture f;
  return f;
}

// --- miter ---------------------------------------------------------------------

TEST(ValidateMiter, PassesOnCleanToyTransform) {
  const auto& f = toy();
  ASSERT_EQ(f.result.transformed.num_flops(), 0u) << "counter must be removed";
  const validate::MiterResult m =
      validate::check_bounded_equivalence(f.design, f.result.transformed, f.restrict_fn,
                                          f.result.proven_props);
  EXPECT_EQ(m.verdict, Verdict::Pass) << m.detail;
}

TEST(ValidateMiter, CatchesHandCorruptedTransform) {
  const auto& f = toy();
  Netlist bad = f.result.transformed;
  const NetId parity = bad.find_output("parity")->bits[0];
  bad.redrive_net(parity, CellKind::Const0);
  const validate::MiterResult m = validate::check_bounded_equivalence(
      f.design, bad, f.restrict_fn, f.result.proven_props);
  EXPECT_EQ(m.verdict, Verdict::Fail);
  EXPECT_GE(m.violation_frame, 0);
  EXPECT_NE(m.detail.find("parity"), std::string::npos) << m.detail;
}

TEST(ValidateMiter, BudgetExhaustionReportsInconclusiveNotPass) {
  const auto& f = toy();
  validate::MiterOptions mopt;
  mopt.conflict_budget = 0;  // every non-trivial query is inconclusive
  const validate::MiterResult m = validate::check_bounded_equivalence(
      f.design, f.result.transformed, f.restrict_fn, f.result.proven_props, mopt);
  EXPECT_NE(m.verdict, Verdict::Fail) << m.detail;
  // With a zero budget the verdict must not silently claim Pass unless the
  // queries really were decided by propagation alone.
  if (m.verdict == Verdict::Inconclusive) {
    EXPECT_FALSE(m.detail.empty());
  }
}

// --- fault campaign --------------------------------------------------------------

TEST(ValidateFaults, CampaignDetectsAllThreeClasses) {
  const auto& f = toy();
  ASSERT_GT(f.result.proven_props.size(), 0u);
  validate::CampaignOptions copt;
  copt.faults_per_class = 2;
  const validate::CampaignResult camp = validate::run_fault_campaign(
      f.design, f.result.transformed, f.result.proven_props, f.restrict_fn, copt);
  EXPECT_EQ(camp.injected, 3 * copt.faults_per_class) << camp.summary();
  EXPECT_TRUE(camp.all_detected()) << camp.summary();
  bool seen[validate::kNumFaultClasses] = {};
  for (const auto& o : camp.outcomes) seen[static_cast<int>(o.cls)] = true;
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]) << "all fault classes must be exercised";
}

TEST(ValidateFaults, ActivationOracleSeesInjectedDifferences) {
  const auto& f = toy();
  EXPECT_FALSE(validate::outputs_differ_random(f.result.transformed, f.result.transformed, 64, 5));
  Netlist bad = f.result.transformed;
  const NetId parity = bad.find_output("parity")->bits[0];
  bad.redrive_net(parity, CellKind::Const1);
  EXPECT_TRUE(validate::outputs_differ_random(f.result.transformed, bad, 64, 5));
}

// --- pipeline integration ---------------------------------------------------------

TEST(ValidatePipeline, CleanRunReportsPassAndKeepsReduction) {
  const auto& f = toy();
  PdatOptions opt;
  opt.validate.enabled = true;
  const PdatResult res = run_pdat(f.design, f.restrict_fn, opt);
  EXPECT_EQ(res.validation.miter, Verdict::Pass) << res.validation.summary();
  EXPECT_EQ(res.validation.lockstep, Verdict::Skipped);
  EXPECT_FALSE(res.degraded);
  EXPECT_EQ(res.flops_after, 0u) << "validation must not block the reduction";
  EXPECT_GT(res.validation.seconds, 0.0);
}

TEST(ValidatePipeline, LockstepRejectionRevertsToUnreducedDesign) {
  const auto& f = toy();
  PdatOptions opt;
  opt.validate.enabled = true;
  opt.validate.lockstep = [](const Netlist&) { return std::string("injected mismatch"); };
  const PdatResult res = run_pdat(f.design, f.restrict_fn, opt);
  EXPECT_EQ(res.validation.lockstep, Verdict::Fail);
  EXPECT_TRUE(res.degraded);
  ASSERT_FALSE(res.degradations.empty());
  EXPECT_NE(res.degradations.back().find("injected mismatch"), std::string::npos);
  // Never ship a core a validator rejected: identity transform.
  EXPECT_EQ(res.gates_after, res.gates_before);
  EXPECT_EQ(res.flops_after, res.flops_before);
}

TEST(ValidatePipeline, FailHardThrowsValidationError) {
  const auto& f = toy();
  PdatOptions opt;
  opt.validate.enabled = true;
  opt.validate.fail_hard = true;
  opt.validate.lockstep = [](const Netlist&) { return std::string("injected mismatch"); };
  EXPECT_THROW(run_pdat(f.design, f.restrict_fn, opt), ValidationError);
}

// --- graceful degradation and fail-fast configuration errors ----------------------

TEST(ValidatePipeline, MalformedRestrictionFailsFastEvenWhenNotStrict) {
  const auto& f = toy();
  const NetId parity = f.design.find_output("parity")->bits[0];
  // A restriction that detaches a driver without registering the cutpoint
  // leaves the analysis netlist malformed — a configuration error that must
  // throw immediately rather than degrade into a silent identity run.
  EXPECT_THROW(run_pdat(f.design,
                        [parity](Netlist& a) {
                          a.detach_driver(parity);
                          return RestrictionResult{};
                        }),
               StageError);
}

TEST(ValidatePipeline, StageDeadlineDegradesWithoutThrowing) {
  const auto& f = toy();
  PdatOptions opt;
  opt.stage_deadline_seconds = 1e-9;
  const PdatResult res = run_pdat(f.design, f.restrict_fn, opt);
  EXPECT_TRUE(res.degraded);
  EXPECT_FALSE(res.degradations.empty());
  EXPECT_EQ(res.proven, 0u) << "expired proof stage must prove nothing";
  // The funnel collapses but the pipeline still returns a well-formed core.
  EXPECT_TRUE(check_netlist(res.transformed).empty());
  EXPECT_TRUE(test::cosim_equal(f.design, res.transformed, 123, 128))
      << "with nothing proved the transform must be a functional identity";
}

TEST(ValidatePipeline, StrictModeTurnsDeadlineIntoStageError) {
  const auto& f = toy();
  PdatOptions opt;
  opt.stage_deadline_seconds = 1e-9;
  opt.strict = true;
  EXPECT_THROW(run_pdat(f.design, f.restrict_fn, opt), StageError);
}

TEST(ValidatePipeline, TotalDeadlineSkipsLateStages) {
  const auto& f = toy();
  PdatOptions opt;
  opt.total_deadline_seconds = 1e-9;
  const PdatResult res = run_pdat(f.design, f.restrict_fn, opt);
  EXPECT_TRUE(res.degraded);
  bool induction_skipped = false;
  for (const auto& d : res.degradations) {
    if (d.find("induction") != std::string::npos) induction_skipped = true;
  }
  EXPECT_TRUE(induction_skipped);
  EXPECT_TRUE(test::cosim_equal(f.design, res.transformed, 321, 128));
}

TEST(ValidatePipeline, StageTimingsAreRecorded) {
  const auto& f = toy();
  const PdatResult& res = f.result;
  double sum = 0;
  for (double s : res.stage_seconds) sum += s;
  EXPECT_GT(sum, 0.0);
  EXPECT_GE(res.total_seconds, sum * 0.5);
}

// --- end-to-end on the Ibex core --------------------------------------------------

TEST(ValidateIbex, CleanRv32iReductionPassesMiterAndLockstep) {
  cores::IbexCore core = cores::build_ibex();
  opt::optimize(core.netlist);
  core.refresh_handles();
  const auto subset = isa::rv32_subset_named("rv32i");
  auto instr_q = core.instr_reg_q;
  const auto restrict_fn = [&](Netlist& a) {
    return restrict_isa_cutpoint(a, instr_q, subset);
  };
  PdatOptions opt;
  const PdatResult res = run_pdat(core.netlist, restrict_fn, opt);
  ASSERT_GT(res.proven, 0u);

  validate::MiterOptions mopt;
  mopt.depth = 2;
  const validate::MiterResult m = validate::check_bounded_equivalence(
      core.netlist, res.transformed, restrict_fn, res.proven_props, mopt);
  EXPECT_EQ(m.verdict, Verdict::Pass) << m.detail;

  const validate::LockstepResult l =
      validate::lockstep_rv32(res.transformed, validate::rv32_smoke_programs(true));
  EXPECT_EQ(l.verdict, Verdict::Pass) << l.detail;
  EXPECT_GE(l.programs_run, 3);
}

}  // namespace
}  // namespace pdat
