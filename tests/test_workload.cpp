#include <gtest/gtest.h>

#include "base/types.h"
#include "iss/rv32_iss.h"
#include "workload/mibench.h"

namespace pdat::workload {
namespace {

std::uint32_t run_kernel(const Kernel& k) {
  const auto prog = isa::assemble_rv32(k.source);
  iss::Rv32Iss sim;
  sim.load_words(0, prog.words);
  sim.reset();
  sim.run(5000000);
  EXPECT_TRUE(sim.halted()) << k.name;
  EXPECT_FALSE(sim.illegal()) << k.name;
  return sim.reg(10);
}

TEST(Workloads, AllKernelsAssembleAndHalt) {
  for (const auto& k : mibench_kernels()) {
    const std::uint32_t a0 = run_kernel(k);
    EXPECT_NE(a0, 0u) << k.name << " checksum should be nonzero";
  }
}

TEST(Workloads, Crc32MatchesReferenceImplementation) {
  // Independent C++ model of the kernel's data and algorithm.
  std::uint32_t crc = 0xffffffff;
  for (int i = 0; i < 16; ++i) {
    const std::uint8_t byte = static_cast<std::uint8_t>(i * 8 + 0x5a);
    crc ^= byte;
    for (int b = 0; b < 8; ++b) {
      const bool lsb = crc & 1;
      crc >>= 1;
      if (lsb) crc ^= 0xEDB88320u;
    }
  }
  crc = ~crc;
  const Kernel* k = nullptr;
  for (const auto& kk : mibench_kernels()) {
    if (kk.name == "crc32") k = &kk;
  }
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(run_kernel(*k), crc);
}

TEST(Workloads, BitcountMatchesReference) {
  std::uint32_t sum = 0;
  std::uint32_t v = 0xDEADBEEF;
  for (int i = 0; i < 16; ++i) {
    sum += 2u * static_cast<std::uint32_t>(__builtin_popcount(v));
    v += 0x9E3779B9u;
  }
  const Kernel* k = nullptr;
  for (const auto& kk : mibench_kernels()) {
    if (kk.name == "bitcount") k = &kk;
  }
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(run_kernel(*k), sum);
}

TEST(Workloads, BasicmathGcdComponentCorrect) {
  // gcd(3528, 3780) = 252; the kernel folds it into the checksum along with
  // 8 isqrt values and two divisions — reproduce the whole fold.
  auto isqrt = [](std::uint32_t x) {
    std::uint32_t res = 0, bit = 1u << 14;
    while (bit != 0) {
      const std::uint32_t t = res + bit;
      res >>= 1;
      if (x >= t) {
        x -= t;
        res += bit;
      }
      bit >>= 2;
    }
    return res;
  };
  std::uint32_t sum = 0;
  for (std::uint32_t kk = 0; kk < 8; ++kk) {
    const std::uint32_t t0 = (kk << 10) + 7;
    sum += isqrt((t0 * t0) >> 3);
  }
  std::uint32_t a = 3528, b = 3780;
  while (b != 0) {
    const std::uint32_t r = a % b;
    a = b;
    b = r;
  }
  sum += a;
  sum += 1000000 / 37;
  sum += 1000000u / 37u;
  const Kernel* k = nullptr;
  for (const auto& kk : mibench_kernels()) {
    if (kk.name == "basicmath") k = &kk;
  }
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(run_kernel(*k), sum);
}

TEST(Workloads, GroupProfilesMatchPaperStructure) {
  const GroupProfile net = profile_group("networking");
  const GroupProfile sec = profile_group("security");
  const GroupProfile aut = profile_group("automotive");
  const GroupProfile all = profile_group("all");

  // Paper Table I structure: security uses no M instructions; automotive
  // uses a few; every group uses a strict subset of the base ISA.
  EXPECT_TRUE(sec.m_used.empty());
  EXPECT_GE(aut.m_used.size(), 3u);
  EXPECT_LT(net.base_used.size(), 40u);
  EXPECT_LT(sec.base_used.size(), 40u);
  EXPECT_LT(aut.base_used.size(), 40u);
  // The union is what "MiBench All" supports.
  EXPECT_GE(all.base_used.size(), net.base_used.size());
  EXPECT_GE(all.base_used.size(), sec.base_used.size());
  // Compiled-with-C binaries would use compressed forms.
  EXPECT_GT(net.c_used.size(), 4u);
  EXPECT_GT(sec.c_used.size(), 4u);
  EXPECT_GT(all.c_used.size(), net.c_used.size() - 1);
}

TEST(Workloads, GroupSubsetsAreValidAndContainEbreak) {
  for (const char* g : {"networking", "security", "automotive", "all"}) {
    const auto s = group_subset(g);
    EXPECT_GT(s.size(), 10u) << g;
    EXPECT_TRUE(s.contains("ebreak")) << g;
    EXPECT_FALSE(s.contains("csrrw")) << g << ": Zicsr unused by MiBench (Table I)";
  }
}

TEST(Workloads, UnknownGroupThrows) { EXPECT_THROW(profile_group("floating"), pdat::PdatError); }

}  // namespace
}  // namespace pdat::workload
