#!/usr/bin/env python3
"""Validate and normalize PDAT telemetry captures.

Usage:
  validate_telemetry.py --metrics metrics.json [--trace trace.json]
  validate_telemetry.py --trace trace.json
  validate_telemetry.py --normalize trace.json

--metrics validates a "pdat-metrics" document against
docs/schemas/pdat-metrics.schema.json when the `jsonschema` package is
importable, falling back to equivalent built-in structural checks otherwise
(CI runners and dev boxes need nothing beyond the standard library).

--trace checks the Chrome-trace/Perfetto shape written by
trace::write_chrome_trace: displayTimeUnit, complete ("ph":"X") events with
name/cat/pid/tid/ts/dur, and integer args.

--normalize prints the determinism-relevant projection of a trace — the
(name, sorted-args) pairs with ts/dur/tid erased, sorted — one event per
line, so two runs of the same configuration can be byte-compared with diff
regardless of thread count or machine speed. Mirrors
trace::normalized_events() in src/trace/trace.h.

Exit status: 0 = valid, 1 = validation failure, 2 = usage/IO error.
"""

import argparse
import json
import os
import sys

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "docs", "schemas", "pdat-metrics.schema.json")

STAGE_NAMES = [
    "restrict", "env-check", "annotate", "sim-filter",
    "induction", "rewire", "resynthesis", "validate",
]


class ValidationError(Exception):
    pass


def fail(where, msg):
    raise ValidationError(f"{where}: {msg}")


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        sys.exit(2)


# ---------------------------------------------------------------- metrics --

def check_uint(where, v):
    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
        fail(where, f"expected a non-negative integer, got {v!r}")


def check_number(where, v):
    if isinstance(v, bool) or not isinstance(v, (int, float)) or v < 0:
        fail(where, f"expected a non-negative number, got {v!r}")


def check_metric_name(where, name):
    parts = name.split(".")
    ok = len(parts) >= 2 and all(
        p and all(c.islower() or c.isdigit() or c == "_" for c in p)
        for p in parts)
    if not ok:
        fail(where, f"malformed metric name {name!r} (want dotted lowercase)")


def check_counter_map(where, m):
    if not isinstance(m, dict):
        fail(where, "expected an object")
    for name, v in m.items():
        check_metric_name(where, name)
        check_uint(f"{where}.{name}", v)


def check_histogram_map(where, m):
    if not isinstance(m, dict):
        fail(where, "expected an object")
    for name, h in m.items():
        check_metric_name(where, name)
        w = f"{where}.{name}"
        if not isinstance(h, dict):
            fail(w, "expected a histogram object")
        if set(h) != {"count", "sum", "max", "buckets"}:
            fail(w, f"histogram keys must be count/sum/max/buckets, got {sorted(h)}")
        for k in ("count", "sum", "max"):
            check_uint(f"{w}.{k}", h[k])
        b = h["buckets"]
        if not isinstance(b, list) or len(b) != 16:
            fail(f"{w}.buckets", "expected exactly 16 buckets")
        for i, v in enumerate(b):
            check_uint(f"{w}.buckets[{i}]", v)
        if sum(b) != h["count"]:
            fail(w, f"bucket sum {sum(b)} != count {h['count']}")


def structural_validate_metrics(doc):
    if not isinstance(doc, dict):
        fail("$", "expected a JSON object")
    if doc.get("schema") != "pdat-metrics":
        fail("schema", f'expected "pdat-metrics", got {doc.get("schema")!r}')
    if doc.get("version") != 1:
        fail("version", f"expected 1, got {doc.get('version')!r}")
    if not isinstance(doc.get("label"), str):
        fail("label", "expected a string")
    extra = set(doc) - {"schema", "version", "label", "deterministic", "timing"}
    if extra:
        fail("$", f"unexpected top-level keys {sorted(extra)}")

    det = doc.get("deterministic")
    if not isinstance(det, dict):
        fail("deterministic", "missing or not an object")
    if set(det) != {"pipeline", "counters", "histograms", "induction_rounds"}:
        fail("deterministic", f"unexpected key set {sorted(det)}")
    pipe = det["pipeline"]
    pipe_keys = {"candidates", "after_sim_filter", "proven", "gates_before",
                 "gates_after", "degraded", "resumed_from_round"}
    if set(pipe) != pipe_keys:
        fail("deterministic.pipeline", f"unexpected key set {sorted(pipe)}")
    for k in pipe_keys - {"degraded", "resumed_from_round"}:
        check_uint(f"deterministic.pipeline.{k}", pipe[k])
    if not isinstance(pipe["degraded"], bool):
        fail("deterministic.pipeline.degraded", "expected a boolean")
    rfr = pipe["resumed_from_round"]
    if not isinstance(rfr, int) or isinstance(rfr, bool) or rfr < -2:
        fail("deterministic.pipeline.resumed_from_round", f"bad value {rfr!r}")
    check_counter_map("deterministic.counters", det["counters"])
    check_histogram_map("deterministic.histograms", det["histograms"])
    rounds = det["induction_rounds"]
    if not isinstance(rounds, list):
        fail("deterministic.induction_rounds", "expected an array")
    for i, r in enumerate(rounds):
        w = f"deterministic.induction_rounds[{i}]"
        keys = {"round", "alive_before", "cex_kills", "budget_kills", "sat_calls"}
        if not isinstance(r, dict) or set(r) != keys:
            fail(w, f"unexpected shape {r!r}")
        if not isinstance(r["round"], int) or isinstance(r["round"], bool) or r["round"] < -1:
            fail(f"{w}.round", f"bad value {r['round']!r}")
        for k in keys - {"round"}:
            check_uint(f"{w}.{k}", r[k])

    tim = doc.get("timing")
    if not isinstance(tim, dict):
        fail("timing", "missing or not an object")
    tim_keys = {"total_wall_seconds", "cpu_seconds", "peak_rss_bytes",
                "stages", "counters", "histograms"}
    if set(tim) != tim_keys:
        fail("timing", f"unexpected key set {sorted(tim)}")
    check_number("timing.total_wall_seconds", tim["total_wall_seconds"])
    check_number("timing.cpu_seconds", tim["cpu_seconds"])
    check_uint("timing.peak_rss_bytes", tim["peak_rss_bytes"])
    stages = tim["stages"]
    if not isinstance(stages, list) or len(stages) != 8:
        fail("timing.stages", "expected exactly 8 stage entries")
    for i, s in enumerate(stages):
        w = f"timing.stages[{i}]"
        if not isinstance(s, dict) or set(s) != {"name", "wall_seconds"}:
            fail(w, f"unexpected shape {s!r}")
        if s["name"] != STAGE_NAMES[i]:
            fail(f"{w}.name", f"expected {STAGE_NAMES[i]!r}, got {s['name']!r}")
        check_number(f"{w}.wall_seconds", s["wall_seconds"])
    check_counter_map("timing.counters", tim["counters"])
    check_histogram_map("timing.histograms", tim["histograms"])


def validate_metrics(path):
    doc = load_json(path)
    try:
        import jsonschema  # type: ignore
        schema = load_json(SCHEMA_PATH)
        try:
            jsonschema.validate(doc, schema)
        except jsonschema.ValidationError as e:
            where = "$" + "".join(f"[{p!r}]" for p in e.absolute_path)
            raise ValidationError(f"{where}: {e.message}")
        # The draft-07 schema cannot express bucket-sum == count or the
        # fixed stage order; run the structural pass for those too.
        structural_validate_metrics(doc)
        mode = "jsonschema + structural"
    except ImportError:
        structural_validate_metrics(doc)
        mode = "structural (jsonschema not installed)"
    n_det = len(doc["deterministic"]["counters"])
    n_tim = len(doc["timing"]["counters"])
    print(f"{path}: OK ({mode}); label={doc['label']!r}, "
          f"{n_det} deterministic + {n_tim} timing counters, "
          f"{len(doc['deterministic']['induction_rounds'])} induction rounds")


# ------------------------------------------------------------------ trace --

def trace_events(doc, path):
    if not isinstance(doc, dict):
        fail("$", "expected a JSON object")
    if doc.get("displayTimeUnit") != "ms":
        fail("displayTimeUnit", f'expected "ms", got {doc.get("displayTimeUnit")!r}')
    ev = doc.get("traceEvents")
    if not isinstance(ev, list):
        fail("traceEvents", "missing or not an array")
    return ev


def validate_trace(path):
    doc = load_json(path)
    events = trace_events(doc, path)
    names = set()
    for i, e in enumerate(events):
        w = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(w, "expected an object")
        for key, typ in (("name", str), ("cat", str), ("ph", str)):
            if not isinstance(e.get(key), typ):
                fail(f"{w}.{key}", f"missing or not a {typ.__name__}")
        if e["ph"] != "X":
            fail(f"{w}.ph", f'expected complete event "X", got {e["ph"]!r}')
        if e["cat"] != "pdat":
            fail(f"{w}.cat", f'expected "pdat", got {e["cat"]!r}')
        for key in ("pid", "tid", "ts", "dur"):
            v = e.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(f"{w}.{key}", f"missing or not a non-negative integer: {v!r}")
        args = e.get("args", {})
        if not isinstance(args, dict):
            fail(f"{w}.args", "expected an object")
        for k, v in args.items():
            if not isinstance(v, int) or isinstance(v, bool):
                fail(f"{w}.args.{k}", f"expected an integer, got {v!r}")
        names.add(e["name"])
    print(f"{path}: OK; {len(events)} events, {len(names)} distinct span names")


def normalize_trace(path):
    doc = load_json(path)
    events = trace_events(doc, path)
    lines = []
    for e in events:
        # "threads" is configuration identity, not proof behavior; erased so
        # normalized traces compare across --threads values (matches
        # trace::normalized_events()).
        args = {k: v for k, v in e.get("args", {}).items() if k != "threads"}
        rendered = " ".join(f"{k}={args[k]}" for k in sorted(args))
        lines.append(f"{e.get('name')} {rendered}".rstrip())
    for line in sorted(lines):
        print(line)


def main():
    ap = argparse.ArgumentParser(
        description="Validate or normalize PDAT telemetry files "
                    "(see docs/telemetry.md)")
    ap.add_argument("--metrics", metavar="FILE",
                    help="validate a pdat-metrics document")
    ap.add_argument("--trace", metavar="FILE",
                    help="validate a Chrome-trace capture")
    ap.add_argument("--normalize", metavar="FILE",
                    help="print the sorted (name, args) projection of a trace")
    args = ap.parse_args()
    if not (args.metrics or args.trace or args.normalize):
        ap.error("nothing to do: pass --metrics, --trace, or --normalize")
    try:
        if args.normalize:
            normalize_trace(args.normalize)
        if args.metrics:
            validate_metrics(args.metrics)
        if args.trace:
            validate_trace(args.trace)
    except ValidationError as e:
        print(f"INVALID: {e}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
